//! Morsel-driven work distribution with work stealing (after Leis et al.,
//! "Morsel-Driven Parallelism", SIGMOD 2014), built on `std::thread::scope`
//! — no external crates, no unsafe.
//!
//! The unit of work is a *morsel*: a small contiguous chunk of a task
//! list (for subgraph enumeration, a chunk of the depth-0 root
//! candidates). Morsels are dealt round-robin into per-worker queues;
//! each worker drains its own queue front-to-back and, when empty,
//! *steals* a morsel from the back of the richest other queue. Under the
//! skewed subtree sizes of power-law graphs this keeps every worker busy
//! until the global work list is exhausted — the dynamic balancing a
//! static root partition cannot provide.
//!
//! Morsel-size policy: [`morsel_size_for`] targets at least
//! [`MORSELS_PER_WORKER`] morsels per worker (so there is enough slack to
//! steal) and caps morsels at [`MAX_MORSEL`] entries (so one hub-rooted
//! morsel cannot dominate a run), with a floor of one entry.

use crate::metrics::WorkerMetrics;
use crate::trace::{EventKind, EventRing, Trace};
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Mutex;
use std::time::Instant;

/// Minimum morsels dealt per worker (steal slack).
pub const MORSELS_PER_WORKER: usize = 8;

/// Maximum entries per morsel.
pub const MAX_MORSEL: usize = 64;

/// The morsel size for `n` work items across `threads` workers:
/// `clamp(n / (threads · MORSELS_PER_WORKER), 1, MAX_MORSEL)`.
pub fn morsel_size_for(n: usize, threads: usize) -> usize {
    (n / (threads.max(1) * MORSELS_PER_WORKER)).clamp(1, MAX_MORSEL)
}

/// Split `0..n` into contiguous morsels of [`morsel_size_for`] entries,
/// dealt round-robin across `threads` queues (round-robin decorrelates
/// queue load when expensive roots cluster, e.g. low-id hubs in RMAT).
pub fn deal_morsels(n: usize, threads: usize) -> Vec<Vec<Range<usize>>> {
    let threads = threads.max(1);
    let size = morsel_size_for(n, threads);
    let mut queues: Vec<Vec<Range<usize>>> = vec![Vec::new(); threads];
    let mut start = 0usize;
    let mut k = 0usize;
    while start < n {
        let end = (start + size).min(n);
        queues[k % threads].push(start..end);
        start = end;
        k += 1;
    }
    queues
}

/// How a morsel was obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Popped<T> {
    /// From the worker's own queue.
    Local(T),
    /// Stolen from another worker's queue.
    Stolen(T),
}

/// A fixed set of per-worker morsel queues with stealing. Work only ever
/// leaves the queues (nothing is pushed after construction), so a pop
/// returning `None` after a full scan means the run is drained.
pub struct MorselQueue<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
}

impl<T> MorselQueue<T> {
    /// Build from one pre-dealt queue per worker.
    pub fn new(queues: Vec<Vec<T>>) -> Self {
        MorselQueue {
            queues: queues
                .into_iter()
                .map(|q| Mutex::new(q.into_iter().collect()))
                .collect(),
        }
    }

    /// Number of worker queues.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Pop the next morsel for `worker`: own queue front first, then the
    /// back of the currently richest other queue. `None` = all queues
    /// empty.
    pub fn pop(&self, worker: usize) -> Option<Popped<T>> {
        if let Some(t) = self.queues[worker].lock().unwrap().pop_front() {
            return Some(Popped::Local(t));
        }
        loop {
            // Pick the victim with the most queued morsels.
            let mut victim = None;
            let mut best = 0usize;
            for (i, q) in self.queues.iter().enumerate() {
                if i == worker {
                    continue;
                }
                let len = q.lock().unwrap().len();
                if len > best {
                    best = len;
                    victim = Some(i);
                }
            }
            let v = victim?;
            // The victim may have been drained between the scan and the
            // lock; rescan rather than give up.
            if let Some(t) = self.queues[v].lock().unwrap().pop_back() {
                return Some(Popped::Stolen(t));
            }
        }
    }

    /// Run the full pool to completion: one scoped worker per queue. Each
    /// worker builds its state with `init(worker_id)`, then executes
    /// morsels via `step` (returning `false` stops that worker early, e.g.
    /// on cancellation). Returns each worker's final state and metrics,
    /// indexed by worker id.
    pub fn run<S, I, F>(&self, init: I, step: F) -> Vec<(S, WorkerMetrics)>
    where
        T: Send,
        S: Send,
        I: Fn(usize) -> S + Sync,
        F: Fn(usize, &mut S, T) -> bool + Sync,
    {
        self.run_traced(init, step, &Trace::disabled(), None)
    }

    /// [`MorselQueue::run`] with tracing: each worker opens a span under
    /// `parent`, wraps every morsel in a `morsel` span, and logs
    /// morsel-start/finish, steal and early-stop events into a private
    /// ring flushed when the worker exits (including on cancellation).
    /// With a disabled trace this is exactly `run` — every trace touch is
    /// one branch.
    pub fn run_traced<S, I, F>(
        &self,
        init: I,
        step: F,
        trace: &Trace,
        parent: Option<u32>,
    ) -> Vec<(S, WorkerMetrics)>
    where
        T: Send,
        S: Send,
        I: Fn(usize) -> S + Sync,
        F: Fn(usize, &mut S, T) -> bool + Sync,
    {
        let threads = self.workers();
        scoped_map(threads, |wid| {
            let worker_span = trace
                .is_enabled()
                .then(|| trace.span_under(parent, "worker"));
            let mut ring = EventRing::default();
            let mut state = init(wid);
            let mut metrics = WorkerMetrics::default();
            let mut seq = 0u64;
            loop {
                let waiting = Instant::now();
                let popped = self.pop(wid);
                let wait = waiting.elapsed();
                metrics.idle += wait;
                let (morsel, stolen) = match popped {
                    Some(Popped::Local(t)) => (t, false),
                    Some(Popped::Stolen(t)) => (t, true),
                    None => break,
                };
                metrics.morsels += 1;
                if stolen {
                    metrics.steals += 1;
                    metrics.steal_wait += wait;
                }
                if trace.is_enabled() {
                    if stolen {
                        ring.push(trace.now_ns(), EventKind::Steal, seq);
                    }
                    ring.push(trace.now_ns(), EventKind::MorselStart, seq);
                }
                let working = Instant::now();
                let keep_going = {
                    let _morsel_span = trace.is_enabled().then(|| trace.span("morsel"));
                    step(wid, &mut state, morsel)
                };
                metrics.busy += working.elapsed();
                if trace.is_enabled() {
                    ring.push(trace.now_ns(), EventKind::MorselFinish, seq);
                }
                seq += 1;
                if !keep_going {
                    if trace.is_enabled() {
                        ring.push(trace.now_ns(), EventKind::Cancel, 0);
                        trace.mark_cancelled();
                    }
                    break;
                }
            }
            trace.flush_ring(wid, &ring);
            drop(worker_span);
            (state, metrics)
        })
    }
}

/// Run `f(0..threads)` on scoped OS threads and collect the results in
/// worker order. The replacement for `crossbeam::scope` everywhere in the
/// workspace.
pub fn scoped_map<R, F>(threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 {
        return vec![f(0)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let f = &f;
                scope.spawn(move || f(i))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn morsel_size_policy() {
        // small inputs: one entry per morsel
        assert_eq!(morsel_size_for(4, 4), 1);
        // mid-size: n / (threads * 8)
        assert_eq!(morsel_size_for(6400, 4), 200.min(MAX_MORSEL));
        // capped at MAX_MORSEL
        assert_eq!(morsel_size_for(1_000_000, 2), MAX_MORSEL);
        // degenerate thread count
        assert_eq!(morsel_size_for(100, 0), 100 / MORSELS_PER_WORKER);
    }

    #[test]
    fn deal_covers_everything_once() {
        let queues = deal_morsels(1000, 3);
        assert_eq!(queues.len(), 3);
        let mut covered = vec![false; 1000];
        for q in &queues {
            for r in q {
                for i in r.clone() {
                    assert!(!covered[i], "entry {i} dealt twice");
                    covered[i] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c));
        // round-robin keeps queue sizes within one morsel of each other
        let sizes: Vec<usize> = queues.iter().map(|q| q.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn deal_empty_input() {
        let queues = deal_morsels(0, 4);
        assert!(queues.iter().all(|q| q.is_empty()));
    }

    #[test]
    fn pop_drains_own_then_steals() {
        let q = MorselQueue::new(vec![vec![1, 2], vec![10, 11, 12]]);
        assert_eq!(q.pop(0), Some(Popped::Local(1)));
        assert_eq!(q.pop(0), Some(Popped::Local(2)));
        // own queue empty: steal from the back of the richer queue
        assert_eq!(q.pop(0), Some(Popped::Stolen(12)));
        assert_eq!(q.pop(1), Some(Popped::Local(10)));
        assert_eq!(q.pop(1), Some(Popped::Local(11)));
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop(1), None);
    }

    #[test]
    fn run_executes_every_morsel_exactly_once() {
        let queues = deal_morsels(997, 4);
        let q = MorselQueue::new(queues);
        let sum = AtomicU64::new(0);
        let results = q.run(
            |_wid| 0u64,
            |_wid, local, r: Range<usize>| {
                *local += r.len() as u64;
                sum.fetch_add(r.clone().map(|x| x as u64).sum(), Ordering::Relaxed);
                true
            },
        );
        assert_eq!(results.len(), 4);
        let total_entries: u64 = results.iter().map(|(s, _)| *s).sum();
        assert_eq!(total_entries, 997);
        assert_eq!(sum.load(Ordering::Relaxed), (0..997u64).sum());
        let total_morsels: u64 = results.iter().map(|(_, m)| m.morsels).sum();
        let expected = 997usize.div_ceil(morsel_size_for(997, 4)) as u64;
        assert_eq!(total_morsels, expected);
    }

    #[test]
    fn skew_produces_steals() {
        // All the work in worker 0's queue: the other workers must steal.
        let q = MorselQueue::new(vec![(0..64).collect::<Vec<u32>>(), vec![], vec![], vec![]]);
        let results = q.run(
            |_| 0u64,
            |_, local, _m| {
                // simulate uneven work so the run overlaps
                std::thread::yield_now();
                *local += 1;
                true
            },
        );
        let done: u64 = results.iter().map(|(s, _)| *s).sum();
        assert_eq!(done, 64);
        let steals: u64 = results.iter().map(|(_, m)| m.steals).sum();
        assert!(steals > 0, "no steals despite maximal skew");
    }

    #[test]
    fn early_stop_halts_one_worker() {
        let q = MorselQueue::new(vec![vec![1, 2, 3], vec![]]);
        let results = q.run(
            |_| 0u32,
            |_, n, _| {
                *n += 1;
                false // every worker stops after one morsel
            },
        );
        let executed: u32 = results.iter().map(|(s, _)| *s).sum();
        assert!(executed <= 2, "{executed}"); // at most one morsel per worker
    }

    #[test]
    fn run_traced_records_spans_and_events() {
        let trace = Trace::enabled();
        let root = trace.span("parallel");
        let q = MorselQueue::new(vec![(0..8).collect::<Vec<u32>>(), vec![]]);
        let results = q.run_traced(
            |_| 0u64,
            |_, n, _m| {
                std::thread::yield_now();
                *n += 1;
                true
            },
            &trace,
            root.id(),
        );
        drop(root);
        let done: u64 = results.iter().map(|(s, _)| *s).sum();
        assert_eq!(done, 8);
        let snap = trace.snapshot();
        let workers = snap.spans.iter().filter(|s| s.name == "worker").count();
        let morsels = snap.spans.iter().filter(|s| s.name == "morsel").count();
        assert_eq!(workers, 2);
        assert_eq!(morsels, 8);
        assert!(snap.spans.iter().all(|s| s.closed()));
        // worker spans hang off the parallel root
        assert!(snap
            .spans
            .iter()
            .filter(|s| s.name == "worker")
            .all(|s| s.parent == Some(0)));
        // every executed morsel logged a start and a finish
        let starts: u64 = snap
            .events
            .iter()
            .flat_map(|w| &w.tail)
            .filter(|e| e.kind == EventKind::MorselStart)
            .count() as u64;
        assert_eq!(starts, 8);
        // maximal skew: worker 1 must have stolen, and steal_wait is
        // accounted within idle
        let steals: u64 = results.iter().map(|(_, m)| m.steals).sum();
        assert!(steals > 0);
        for (_, m) in &results {
            assert!(m.steal_wait <= m.idle);
            if m.steals == 0 {
                assert_eq!(m.steal_wait, std::time::Duration::ZERO);
            }
        }
        assert!(!trace.was_cancelled());
    }

    #[test]
    fn run_traced_cancel_flushes_ring() {
        let trace = Trace::enabled();
        let q = MorselQueue::new(vec![vec![1u32, 2, 3]]);
        let _ = q.run_traced(|_| (), |_, _, _| false, &trace, None);
        assert!(trace.was_cancelled());
        let snap = trace.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].tail.last().unwrap().kind, EventKind::Cancel);
        assert!(snap.spans.iter().all(|s| s.closed()));
    }

    #[test]
    fn scoped_map_orders_results() {
        let out = scoped_map(5, |i| i * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
        assert_eq!(scoped_map(1, |i| i), vec![0]);
    }
}
