//! Unified cooperative cancellation: one token type covering per-query
//! deadlines ("kill after 5 minutes"), result caps ("stop at 10^5
//! matches") and caller-side aborts, for both sequential and parallel
//! runs.
//!
//! The protocol is the one every engine in the study already followed ad
//! hoc: hot loops poll [`CancelToken::poll`] every few thousand steps
//! (amortizing the `Instant::now()` call), and anything — a worker hitting
//! the global cap, a deadline expiring on one thread, an external caller —
//! flips the shared flag so every poller stops soon after. The *reason*
//! travels with the flag, so a parallel run can distinguish "timed out"
//! from "cap reached" without per-worker bookkeeping.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a token was cancelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// Explicit stop: a result cap was hit or the caller aborted.
    Stopped,
    /// A deadline expired.
    Deadline,
}

const LIVE: u8 = 0;
const STOPPED: u8 = 1;
const DEADLINE: u8 = 2;

fn reason_of(state: u8) -> Option<CancelReason> {
    match state {
        STOPPED => Some(CancelReason::Stopped),
        DEADLINE => Some(CancelReason::Deadline),
        _ => None,
    }
}

/// A cloneable cancellation token. Clones share the same flag; a `child`
/// gets its own flag but still observes the parent's, so cancelling a
/// query run never cancels the caller's outer token.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicU8>,
    /// Parent flag observed (but never written) by this token.
    upstream: Option<Arc<AtomicU8>>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A live token with no deadline.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A live token that expires at `deadline` (if given).
    pub fn with_deadline(deadline: Option<Instant>) -> Self {
        CancelToken {
            deadline,
            ..CancelToken::default()
        }
    }

    /// A live token that expires `limit` after `started` (if given).
    pub fn deadline_after(started: Instant, limit: Option<Duration>) -> Self {
        Self::with_deadline(limit.map(|d| started + d))
    }

    /// Derive a run-scoped token: fresh flag, `deadline`, and this token
    /// as upstream. Cancelling the child does not cancel `self`;
    /// cancelling `self` is seen by the child.
    pub fn child(&self, deadline: Option<Instant>) -> CancelToken {
        CancelToken {
            flag: Arc::default(),
            upstream: Some(self.flag.clone()),
            deadline,
        }
    }

    /// Cancel with `reason`. First write wins; later calls are no-ops.
    pub fn cancel(&self, reason: CancelReason) {
        let state = match reason {
            CancelReason::Stopped => STOPPED,
            CancelReason::Deadline => DEADLINE,
        };
        let _ = self
            .flag
            .compare_exchange(LIVE, state, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Flag-only check (no clock read): the cancellation reason, if any.
    #[inline]
    pub fn cancelled(&self) -> Option<CancelReason> {
        if let Some(r) = reason_of(self.flag.load(Ordering::Relaxed)) {
            return Some(r);
        }
        self.upstream
            .as_ref()
            .and_then(|f| reason_of(f.load(Ordering::Relaxed)))
    }

    /// Full check: the shared flag first, then the deadline. An expired
    /// deadline cancels the token, so every clone (e.g. every worker of a
    /// parallel run) observes the expiry after one poll.
    #[inline]
    pub fn poll(&self) -> Option<CancelReason> {
        if let Some(r) = self.cancelled() {
            return Some(r);
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.cancel(CancelReason::Deadline);
                Some(CancelReason::Deadline)
            }
            _ => None,
        }
    }

    /// The token's deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert_eq!(t.cancelled(), None);
        assert_eq!(t.poll(), None);
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel(CancelReason::Stopped);
        assert_eq!(c.poll(), Some(CancelReason::Stopped));
    }

    #[test]
    fn first_reason_wins() {
        let t = CancelToken::new();
        t.cancel(CancelReason::Deadline);
        t.cancel(CancelReason::Stopped);
        assert_eq!(t.cancelled(), Some(CancelReason::Deadline));
    }

    #[test]
    fn expired_deadline_cancels_all_clones() {
        let t = CancelToken::with_deadline(Some(Instant::now() - Duration::from_millis(1)));
        let clone = t.clone();
        assert_eq!(t.poll(), Some(CancelReason::Deadline));
        // the clone sees it via the flag alone, no clock read needed
        assert_eq!(clone.cancelled(), Some(CancelReason::Deadline));
    }

    #[test]
    fn unexpired_deadline_stays_live() {
        let t = CancelToken::deadline_after(Instant::now(), Some(Duration::from_secs(3600)));
        assert_eq!(t.poll(), None);
        assert!(t.deadline().is_some());
    }

    #[test]
    fn child_observes_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child(None);
        child.cancel(CancelReason::Stopped);
        assert_eq!(child.cancelled(), Some(CancelReason::Stopped));
        assert_eq!(parent.cancelled(), None, "child must not cancel parent");

        let parent2 = CancelToken::new();
        let child2 = parent2.child(None);
        parent2.cancel(CancelReason::Stopped);
        assert_eq!(child2.cancelled(), Some(CancelReason::Stopped));
    }

    #[test]
    fn child_deadline_is_its_own() {
        let parent = CancelToken::new();
        let child = parent.child(Some(Instant::now() - Duration::from_millis(1)));
        assert_eq!(child.poll(), Some(CancelReason::Deadline));
        assert_eq!(parent.poll(), None);
    }
}
