//! A small seeded property-testing harness: random inputs, deterministic
//! replay, size-based shrinking — enough to carry the workspace's
//! randomized invariant suites without an external dependency.
//!
//! Model: a test supplies a *generator* `fn(&mut Rng64, size) -> T` and a
//! *property* `fn(&T) -> Result<(), String>`. The harness runs the
//! property over `cases` inputs with the generation size ramping up, so
//! early cases are tiny and late cases stress the invariant. Every case
//! has its own seed derived from the base seed by [`splitmix64`], printed
//! on failure; re-running with `SM_CHECK_SEED=<seed>` replays the failing
//! substream first, independent of how many cases precede it.
//!
//! Shrinking exploits that generators scale with `size`: on failure the
//! harness regenerates the same substream at every smaller size and
//! reports the smallest input that still fails. That is cruder than
//! structural shrinking but needs no per-type shrinkers and no persisted
//! regression files — the seed *is* the regression entry.
//!
//! Environment knobs: `SM_CHECK_SEED` (replay one substream),
//! `SM_CHECK_CASES` (override the case count, e.g. for a soak run).

use crate::rng::{splitmix64, Rng64};
use std::fmt::Debug;

/// Default number of cases per property.
pub const DEFAULT_CASES: u32 = 32;

/// Default maximum generation size.
pub const DEFAULT_MAX_SIZE: u32 = 100;

/// Base seed all properties derive from (stable across runs so CI
/// failures reproduce locally without any saved state).
pub const DEFAULT_SEED: u64 = 0x5EED_CAFE_F00D_2020;

/// A configured property check. Build with [`Check::new`], adjust with
/// the builder methods, execute with [`Check::run`].
pub struct Check {
    name: String,
    cases: u32,
    max_size: u32,
    seed: u64,
}

impl Check {
    /// A check named `name` (shown in failure messages) with default
    /// cases/size/seed.
    pub fn new(name: &str) -> Self {
        Check {
            name: name.to_string(),
            cases: DEFAULT_CASES,
            max_size: DEFAULT_MAX_SIZE,
            seed: DEFAULT_SEED,
        }
    }

    /// Set the number of random cases (`SM_CHECK_CASES` overrides).
    pub fn cases(mut self, n: u32) -> Self {
        self.cases = n.max(1);
        self
    }

    /// Set the maximum generation size the ramp reaches.
    pub fn max_size(mut self, s: u32) -> Self {
        self.max_size = s.max(1);
        self
    }

    /// Set the base seed (rarely needed; `SM_CHECK_SEED` replays a
    /// specific failing substream without touching code).
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Run `prop` over random inputs from `gen`. Panics with a replayable
    /// report on the first (shrunk) failure.
    pub fn run<T, G, P>(&self, gen: G, prop: P)
    where
        T: Debug,
        G: Fn(&mut Rng64, u32) -> T,
        P: Fn(&T) -> Result<(), String>,
    {
        let cases = match env_u64("SM_CHECK_CASES") {
            Some(n) => n.clamp(1, u32::MAX as u64) as u32,
            None => self.cases,
        };

        // Replay mode: one substream, every size up to the max. Covers
        // the originally failing size without having to persist it.
        if let Some(seed) = env_u64("SM_CHECK_SEED") {
            for size in 1..=self.max_size {
                self.run_one(seed, size, &gen, &prop);
            }
            return;
        }

        let mut chain = self.seed;
        for case in 0..cases {
            let case_seed = splitmix64(&mut chain);
            // Ramp size from 1 to max_size across the cases.
            let size = if cases <= 1 {
                self.max_size
            } else {
                1 + (case as u64 * (self.max_size - 1) as u64 / (cases - 1) as u64) as u32
            };
            self.run_one(case_seed, size, &gen, &prop);
        }
    }

    fn run_one<T, G, P>(&self, case_seed: u64, size: u32, gen: &G, prop: &P)
    where
        T: Debug,
        G: Fn(&mut Rng64, u32) -> T,
        P: Fn(&T) -> Result<(), String>,
    {
        let input = gen(&mut Rng64::seed_from_u64(case_seed), size);
        let err = match prop(&input) {
            Ok(()) => return,
            Err(e) => e,
        };
        // Shrink: same substream, smaller sizes; keep the smallest failure.
        let mut worst: (u32, T, String) = (size, input, err);
        for s in (1..size).rev() {
            let candidate = gen(&mut Rng64::seed_from_u64(case_seed), s);
            if let Err(e) = prop(&candidate) {
                worst = (s, candidate, e);
            }
        }
        let (shrunk_size, shrunk_input, shrunk_err) = worst;
        panic!(
            "property '{}' failed at size {shrunk_size} (seed {case_seed:#x}): \
             {shrunk_err}\n  input: {shrunk_input:?}\n  replay: \
             SM_CHECK_SEED={case_seed:#x} cargo test {}",
            self.name, self.name
        );
    }
}

fn env_u64(var: &str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{var} must be a u64 (decimal or 0x-hex), got {raw:?}"),
    }
}

/// Fail a property with a formatted message unless `cond` holds.
/// The property-function analogue of `assert!`, returning `Err` instead
/// of panicking so the harness can shrink the input first.
#[macro_export]
macro_rules! ensure {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("ensure failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fail a property unless the two expressions are equal, reporting both
/// values. The property-function analogue of `assert_eq!`.
#[macro_export]
macro_rules! ensure_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "ensure_eq failed: {} != {}\n  left:  {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}\n  left:  {:?}\n  right: {:?}",
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let ran = std::cell::Cell::new(0u32);
        Check::new("count").cases(10).run(
            |rng, size| {
                ran.set(ran.get() + 1);
                rng.gen_range(0u32..size + 1)
            },
            |_| Ok(()),
        );
        assert_eq!(ran.get(), 10);
    }

    #[test]
    fn failure_is_shrunk_and_replayable() {
        // Property fails whenever the generated vec has length >= 10; the
        // shrink should land exactly on size 10.
        let err = std::panic::catch_unwind(|| {
            Check::new("too_long").cases(20).max_size(50).run(
                |rng, size| {
                    (0..size)
                        .map(|_| rng.next_u64() & 0xFF)
                        .collect::<Vec<u64>>()
                },
                |v| {
                    if v.len() >= 10 {
                        Err(format!("len {} >= 10", v.len()))
                    } else {
                        Ok(())
                    }
                },
            )
        })
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| panic!("panic payload not a String"));
        assert!(msg.contains("failed at size 10"), "{msg}");
        assert!(msg.contains("SM_CHECK_SEED="), "{msg}");
    }

    #[test]
    fn sizes_ramp_up() {
        let sizes = std::cell::RefCell::new(Vec::new());
        Check::new("ramp")
            .cases(5)
            .max_size(100)
            .run(|_, size| sizes.borrow_mut().push(size), |_| Ok(()));
        let sizes = sizes.into_inner();
        assert_eq!(sizes.first(), Some(&1));
        assert_eq!(sizes.last(), Some(&100));
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "{sizes:?}");
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = || {
            let vals = std::cell::RefCell::new(Vec::new());
            Check::new("det")
                .cases(8)
                .run(|rng, _| vals.borrow_mut().push(rng.next_u64()), |_| Ok(()));
            vals.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn ensure_macros_produce_errors() {
        fn prop_bad(x: &u32) -> Result<(), String> {
            ensure!(*x > 100, "x was {x}");
            Ok(())
        }
        fn prop_eq(x: &u32) -> Result<(), String> {
            ensure_eq!(*x, 7u32);
            Ok(())
        }
        assert_eq!(prop_bad(&5), Err("x was 5".to_string()));
        assert!(prop_bad(&101).is_ok());
        assert!(prop_eq(&7).is_ok());
        assert!(prop_eq(&8).unwrap_err().contains("ensure_eq failed"));
    }
}
