//! Prometheus-style text exposition: render a registry snapshot to the
//! classic `name{label="v"} value` line format, and parse such text back
//! into samples. The parser exists so CI can prove the rendered output
//! is machine-readable (render → parse → compare), not just eyeballable.
//!
//! Histograms render as summaries — `{quantile="0.5"}` … series plus
//! `_sum`/`_count`/`_min`/`_max` — because log-linear buckets are this
//! library's internal scheme, while quantiles are what the serving-tier
//! tables actually consume.

use super::hist::HistSnapshot;
use super::registry::{FamilySnapshot, Kind, Labels, Value};

/// Every metric name is exported under this prefix.
pub const PREFIX: &str = "sm_";

/// The quantiles every histogram exposes.
pub const QUANTILES: [(f64, &str); 4] =
    [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

fn escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &Labels, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn render_hist(out: &mut String, name: &str, labels: &Labels, h: &HistSnapshot) {
    for (q, qs) in QUANTILES {
        out.push_str(&format!(
            "{name}{} {}\n",
            render_labels(labels, Some(("quantile", qs))),
            h.quantile(q)
        ));
    }
    let plain = render_labels(labels, None);
    out.push_str(&format!("{name}_sum{plain} {}\n", h.sum()));
    out.push_str(&format!("{name}_count{plain} {}\n", h.count()));
    out.push_str(&format!("{name}_min{plain} {}\n", h.min()));
    out.push_str(&format!("{name}_max{plain} {}\n", h.max()));
}

/// Render a registry snapshot as Prometheus-style text.
pub fn render(families: &[FamilySnapshot]) -> String {
    let mut out = String::new();
    for f in families {
        let name = format!("{PREFIX}{}", f.name);
        let kind = match f.kind {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "summary",
        };
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        for s in &f.series {
            match &s.value {
                Value::Counter(v) | Value::Gauge(v) => {
                    out.push_str(&format!("{name}{} {v}\n", render_labels(&s.labels, None)));
                }
                Value::Float(v) => {
                    out.push_str(&format!(
                        "{name}{} {v:.6}\n",
                        render_labels(&s.labels, None)
                    ));
                }
                Value::Histogram(h) => render_hist(&mut out, &name, &s.labels, h),
            }
        }
    }
    out
}

/// One parsed exposition line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name, prefix included.
    pub name: String,
    /// Labels sorted by key.
    pub labels: Labels,
    /// The sample value.
    pub value: f64,
}

/// Parse Prometheus-style text back into samples. Comment and blank
/// lines are skipped; any other malformed line is an error naming the
/// line — this is the CI smoke's teeth.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_line(line).map_err(|e| format!("line {}: {e}: {line:?}", no + 1))?);
    }
    Ok(samples)
}

fn parse_line(line: &str) -> Result<Sample, String> {
    let (head, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| "missing value".to_string())?;
    let value: f64 = value.parse().map_err(|_| "bad value".to_string())?;
    let (name, labels) = match head.split_once('{') {
        None => (head.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| "unterminated label set".to_string())?;
            (name.to_string(), parse_labels(body)?)
        }
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("bad metric name {name:?}"));
    }
    let mut labels = labels;
    labels.sort();
    Ok(Sample {
        name,
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Labels, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| "label missing '='".to_string())?;
        let key = rest[..eq].to_string();
        let after = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| "label value not quoted".to_string())?;
        // Find the closing quote, honoring backslash escapes.
        let mut val = String::new();
        let mut chars = after.char_indices();
        let close = loop {
            let (i, c) = chars
                .next()
                .ok_or_else(|| "unterminated label value".to_string())?;
            match c {
                '"' => break i,
                '\\' => match chars.next() {
                    Some((_, 'n')) => val.push('\n'),
                    Some((_, e)) => val.push(e),
                    None => return Err("dangling escape".to_string()),
                },
                c => val.push(c),
            }
        };
        labels.push((key, val));
        rest = &after[close + 1..];
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn render_parse_round_trip() {
        let r = Registry::new();
        r.counter("queries_total", &[("outcome", "complete")])
            .add(42);
        r.counter("queries_total", &[("outcome", "rejected")])
            .add(3);
        r.gauge("shard_skew", &[("shard", "0")]).set(117);
        let h = r.histogram("latency_ns", &[("phase", "execute")]);
        for v in [100u64, 200, 300, 4000] {
            h.record(v);
        }
        let text = render(&r.snapshot());
        let samples = parse(&text).unwrap();
        // counters + gauge + (4 quantiles + sum/count/min/max)
        assert_eq!(samples.len(), 2 + 1 + 8);
        let get = |name: &str, labels: &[(&str, &str)]| {
            samples
                .iter()
                .find(|s| {
                    s.name == name
                        && s.labels
                            == labels
                                .iter()
                                .map(|(k, v)| (k.to_string(), v.to_string()))
                                .collect::<Vec<_>>()
                })
                .unwrap_or_else(|| panic!("missing {name} {labels:?}"))
                .value
        };
        assert_eq!(get("sm_queries_total", &[("outcome", "complete")]), 42.0);
        assert_eq!(get("sm_shard_skew", &[("shard", "0")]), 117.0);
        assert_eq!(get("sm_latency_ns_count", &[("phase", "execute")]), 4.0);
        assert_eq!(get("sm_latency_ns_sum", &[("phase", "execute")]), 4600.0);
        let p50 = get(
            "sm_latency_ns",
            &[("phase", "execute"), ("quantile", "0.5")],
        );
        assert!((p50 - 200.0).abs() / 200.0 <= 0.125, "p50={p50}");
    }

    #[test]
    fn escaped_label_values_survive() {
        let r = Registry::new();
        r.counter("odd", &[("q", "a\"b\\c\nd")]).bump();
        let text = render(&r.snapshot());
        let samples = parse(&text).unwrap();
        assert_eq!(
            samples[0].labels,
            vec![("q".to_string(), "a\"b\\c\nd".to_string())]
        );
    }

    #[test]
    fn type_lines_announce_families() {
        let r = Registry::new();
        r.counter("a_total", &[]).bump();
        r.histogram("b_ns", &[]).record(1);
        let text = render(&r.snapshot());
        assert!(text.contains("# TYPE sm_a_total counter"));
        assert!(text.contains("# TYPE sm_b_ns summary"));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse("novalue").is_err());
        assert!(parse("x{unclosed 1").is_err());
        assert!(parse("x{k=unquoted} 1").is_err());
        assert!(parse("x 1\n\n# comment\ny 2").is_ok());
    }
}
