//! Rolling-window event counting: per-second buckets over the last
//! minute, so rates (q/s, embeddings/s, cache hit rate) are computable
//! from inside the process without an external scraper.
//!
//! Each slot is **one** `AtomicU64` packing `second << COUNT_BITS |
//! count`. Packing the slot's second next to its count makes
//! reset-on-rotate a single CAS: a recorder that finds a stale second in
//! its slot swaps in a fresh `(second, n)` word, so no reader ever sees
//! a half-reset slot and no background sweeper thread is needed. Counts
//! saturate at 2^40−1 per second — far above any realistic event rate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Seconds covered by the window.
pub const WINDOW_SECS: u64 = 60;

const COUNT_BITS: u64 = 40;
const COUNT_MASK: u64 = (1 << COUNT_BITS) - 1;

/// A 60-second rolling event counter.
pub struct RollingWindow {
    slots: [AtomicU64; WINDOW_SECS as usize],
    start: Instant,
}

impl Default for RollingWindow {
    fn default() -> Self {
        RollingWindow::new()
    }
}

impl RollingWindow {
    /// An empty window starting now.
    pub fn new() -> Self {
        RollingWindow::anchored(Instant::now())
    }

    /// An empty window whose clock starts at `start`. Windows sharing an
    /// anchor share second boundaries, so one [`RollingWindow::second`]
    /// read can feed [`RollingWindow::record_at`] on all of them.
    pub fn anchored(start: Instant) -> Self {
        RollingWindow {
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
            start,
        }
    }

    /// The current second of this window's clock — pass it to
    /// [`RollingWindow::record_at`] to batch several window records
    /// against a single clock read.
    pub fn second(&self) -> u64 {
        // Seconds start at 1 so second 0 ("never written") is distinct
        // from a slot legitimately written in the first second.
        self.start.elapsed().as_secs() + 1
    }

    /// Count `n` events now.
    #[inline]
    pub fn record(&self, n: u64) {
        self.record_at(self.second(), n);
    }

    /// Events counted over the last [`WINDOW_SECS`] seconds.
    pub fn total(&self) -> u64 {
        self.total_at(self.second())
    }

    /// Mean events/second over the window. Divides by the elapsed
    /// lifetime while the window is still filling, so early rates are
    /// not diluted by seconds that never existed.
    pub fn rate(&self) -> f64 {
        let second = self.second();
        self.total_at(second) as f64 / second.clamp(1, WINDOW_SECS) as f64
    }

    /// Count `n` events at an explicit `second` (from
    /// [`RollingWindow::second`] of a window sharing this anchor).
    pub fn record_at(&self, second: u64, n: u64) {
        let slot = &self.slots[(second % WINDOW_SECS) as usize];
        let mut cur = slot.load(Ordering::Relaxed);
        loop {
            let next = if cur >> COUNT_BITS == second {
                // Same second: bump the packed count (saturating).
                (second << COUNT_BITS) | (cur & COUNT_MASK).saturating_add(n).min(COUNT_MASK)
            } else {
                // Slot holds an expired second: replace wholesale.
                (second << COUNT_BITS) | n.min(COUNT_MASK)
            };
            match slot.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub(crate) fn total_at(&self, second: u64) -> u64 {
        let oldest = second.saturating_sub(WINDOW_SECS - 1);
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .filter(|v| {
                let sec = v >> COUNT_BITS;
                sec >= oldest && sec <= second
            })
            .map(|v| v & COUNT_MASK)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_within_window() {
        let w = RollingWindow::new();
        w.record_at(1, 5);
        w.record_at(1, 2);
        w.record_at(30, 3);
        assert_eq!(w.total_at(30), 10);
    }

    #[test]
    fn expires_old_seconds() {
        let w = RollingWindow::new();
        w.record_at(1, 100);
        w.record_at(70, 1);
        // Second 1 is outside [11, 70].
        assert_eq!(w.total_at(70), 1);
        // A slot reused for a new second forgets the old count.
        w.record_at(1 + WINDOW_SECS, 4);
        assert_eq!(w.total_at(70), 5);
    }

    #[test]
    fn slot_reuse_replaces_stale_count() {
        let w = RollingWindow::new();
        w.record_at(2, 9);
        w.record_at(2 + WINDOW_SECS, 1); // same slot, later second
        assert_eq!(w.total_at(2 + WINDOW_SECS), 1);
    }

    #[test]
    fn live_clock_path_works() {
        let w = RollingWindow::new();
        w.record(3);
        w.record(4);
        assert_eq!(w.total(), 7);
        assert!(w.rate() >= 7.0); // elapsed < 1s ⇒ divisor is 1
    }

    #[test]
    fn rate_uses_elapsed_while_filling() {
        let w = RollingWindow::new();
        w.record_at(2, 10);
        assert_eq!(w.total_at(2), 10);
        // At second 2 the window has existed 2s: rate = 5/s, not 10/60.
        let second = 2u64;
        let rate = w.total_at(second) as f64 / second.min(WINDOW_SECS).max(1) as f64;
        assert_eq!(rate, 5.0);
    }

    #[test]
    fn concurrent_records_all_land() {
        let w = std::sync::Arc::new(RollingWindow::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let w = w.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        w.record_at(5, 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(w.total_at(5), 40_000);
    }
}
