//! `sm-metrics`: the always-on telemetry spine (see OBSERVABILITY.md
//! "Metrics").
//!
//! Where `sm-trace` is per-run and opt-in — a deep profile of one
//! execution — this module is cheap enough to leave on in steady-state
//! serving: lock-free log-linear [`Histogram`]s for latency/size
//! distributions ([`hist`]), a [`RollingWindow`] ring for rates over the
//! last minute ([`window`]), a [`Registry`] of named counter/gauge/
//! histogram series with labeled dimensions ([`registry`]), and a
//! Prometheus-style text exposition with a parser for CI round-trips
//! ([`prom`]). The service layer composes these into
//! `Service::metrics_report()`; nothing here knows about queries or
//! shards.
//!
//! The per-worker pool counters ([`WorkerMetrics`], [`PoolMetrics`])
//! predate the registry and stay as plain structs — they are per-run
//! results threaded through return values, not long-lived series.

pub mod hist;
mod pool_metrics;
pub mod prom;
pub mod registry;
pub mod window;

pub use hist::{HistSnapshot, Histogram};
pub use pool_metrics::{PoolMetrics, WorkerMetrics};
pub use registry::{
    CounterCell, FamilySnapshot, GaugeCell, Kind, Labels, Registry, SeriesSnapshot, Value,
};
pub use window::{RollingWindow, WINDOW_SECS};
