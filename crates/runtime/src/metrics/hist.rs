//! Lock-free log-linear histograms (HdrHistogram-style bucketing).
//!
//! Values are `u64`s (nanoseconds, bytes, embedding counts — the unit is
//! the caller's). Each power-of-two octave `[2^m, 2^(m+1))` splits into
//! `2^SUB_BITS = 8` equal sub-buckets, so any recorded value lands in a
//! bucket whose width is at most 1/8 of the value: every reported
//! quantile is within **12.5% relative error** of the exact
//! sorted-sample oracle (the property tests in `check` pin this).
//!
//! [`Histogram::record`] is lock-free and allocation-free: two relaxed
//! atomic adds (bucket, sum) plus extrema updates that in steady state
//! degrade to plain loads — so recorders on the service submit/finalize
//! path never contend. Reads take a [`Histogram::snapshot`], and
//! snapshots [`HistSnapshot::merge`] across workers, services and
//! shards: bucket counts add, which is exactly how the underlying
//! samples would combine.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 2^3 = 8 linear buckets per octave.
const SUB_BITS: u32 = 3;
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// Buckets 0..8 are exact (values 0..8); each of the 61 octaves
/// `m = 3..=63` contributes 8 sub-buckets: 8 + 61×8 = 496.
pub const NUM_BUCKETS: usize = (SUB_COUNT + (64 - SUB_BITS as u64) * SUB_COUNT) as usize;

/// Bucket index of a value. Values below `2^SUB_BITS` map exactly;
/// larger values map by (octave, sub-bucket).
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS
        let sub = (v >> (msb - SUB_BITS)) & (SUB_COUNT - 1);
        ((msb - SUB_BITS + 1) as u64 * SUB_COUNT + sub) as usize
    }
}

/// Lowest value mapping to `index` (inverse of [`bucket_index`]).
pub(crate) fn bucket_low(index: usize) -> u64 {
    let i = index as u64;
    if i < SUB_COUNT {
        i
    } else {
        let octave = i / SUB_COUNT - 1 + SUB_BITS as u64;
        let sub = i % SUB_COUNT;
        (SUB_COUNT + sub) << (octave - SUB_BITS as u64)
    }
}

/// Highest value mapping to `index`. Summed before the width is added
/// so the final bucket's edge reaches `u64::MAX` without overflow.
pub(crate) fn bucket_high(index: usize) -> u64 {
    let i = index as u64;
    if i < SUB_COUNT {
        i
    } else {
        let octave = i / SUB_COUNT - 1 + SUB_BITS as u64;
        let width = 1u64 << (octave - SUB_BITS as u64);
        bucket_low(index) + (width - 1)
    }
}

/// A mergeable, lock-free log-linear histogram. ~4 KiB of atomics.
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value: two relaxed atomic adds, plus a min/max RMW
    /// only when `v` is a fresh extreme — after warm-up the guards fail
    /// and the extrema cost two plain loads. (The total count is not a
    /// separate atomic; snapshots derive it from the bucket sums.)
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        if v < self.min.load(Ordering::Relaxed) {
            self.min.fetch_min(v, Ordering::Relaxed);
        }
        if v > self.max.load(Ordering::Relaxed) {
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// A coherent-enough copy for reporting. Concurrent recorders may
    /// land between the field reads; the snapshot clamps so quantiles
    /// stay inside `[min, max]` regardless.
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// An owned copy of a [`Histogram`]'s state: quantile queries, merging
/// across workers/shards, and rendering happen here, off the hot path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot::empty()
    }
}

impl HistSnapshot {
    /// A snapshot of zero recorded values.
    pub fn empty() -> Self {
        HistSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; NUM_BUCKETS],
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded values, within
    /// one bucket's relative error (≤ 12.5%) of the exact sorted-sample
    /// answer. Returns 0 when empty.
    ///
    /// The reported value is the upper edge of the bucket holding the
    /// rank-`⌈q·count⌉` sample, clamped into the observed `[min, max]` —
    /// so `quantile(0.0) == min()` and `quantile(1.0) == max()` exactly.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another snapshot into this one — equivalent to having
    /// recorded both sample sets into one histogram.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets as `(low, high, count)` ranges, in value
    /// order — the exposition layer's view.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_low(i), bucket_high(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_low_values_are_exact() {
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_low(v as usize), v);
            assert_eq!(bucket_high(v as usize), v);
        }
    }

    #[test]
    fn bucket_edges_invert_index() {
        for i in 0..NUM_BUCKETS {
            let lo = bucket_low(i);
            assert_eq!(bucket_index(lo), i, "low edge of bucket {i}");
            let hi = bucket_high(i);
            assert_eq!(bucket_index(hi), i, "high edge of bucket {i}");
            if i + 1 < NUM_BUCKETS && hi < u64::MAX {
                assert_eq!(bucket_index(hi + 1), i + 1, "bucket {i} is contiguous");
            }
        }
    }

    #[test]
    fn bucket_width_bounds_relative_error() {
        for v in [8u64, 100, 1_000, 123_456, u64::MAX / 2] {
            let i = bucket_index(v);
            let width = bucket_high(i) - bucket_low(i);
            assert!(
                width <= bucket_low(i) / 8 + 1,
                "bucket of {v} too wide: [{}, {}]",
                bucket_low(i),
                bucket_high(i)
            );
        }
    }

    #[test]
    fn quantiles_match_small_exact_samples() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum(), 15);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 5);
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(0.5), 3);
        assert_eq!(s.quantile(1.0), 5);
    }

    #[test]
    fn empty_snapshot_is_inert() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s, HistSnapshot::empty());
    }

    #[test]
    fn merge_equals_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 { &a } else { &b }.record(v * 17);
            all.record(v * 17);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, all.snapshot());
    }

    #[test]
    fn quantile_clamps_to_observed_extremes() {
        let h = Histogram::new();
        h.record(1_000_003);
        let s = h.snapshot();
        // Single sample: every quantile is that sample, exactly.
        assert_eq!(s.quantile(0.0), 1_000_003);
        assert_eq!(s.quantile(0.5), 1_000_003);
        assert_eq!(s.quantile(0.999), 1_000_003);
    }

    #[test]
    fn nonzero_buckets_cover_counts() {
        let h = Histogram::new();
        for v in [3u64, 3, 900, 901] {
            h.record(v);
        }
        let s = h.snapshot();
        let ranges: Vec<_> = s.nonzero_buckets().collect();
        assert_eq!(ranges.iter().map(|r| r.2).sum::<u64>(), 4);
        assert!(ranges.iter().all(|&(lo, hi, _)| lo <= hi));
        assert_eq!(ranges[0], (3, 3, 2));
    }
}
