//! Per-worker execution counters for parallel runs: morsels executed,
//! morsels stolen, busy/idle wall-clock. Scaling behavior should be
//! observable in the experiment tables, not guessed from total wall-clock.

use std::time::Duration;

/// Counters of one worker of a [`crate::pool`] run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerMetrics {
    /// Morsels this worker executed (own + stolen).
    pub morsels: u64,
    /// Of those, morsels stolen from another worker's queue.
    pub steals: u64,
    /// Time spent executing morsels.
    pub busy: Duration,
    /// Time spent looking for work (queue polling and stealing).
    pub idle: Duration,
    /// Of [`WorkerMetrics::idle`], time spent on polls that ended in a
    /// steal — the steal *latency* (how long finding remote work takes),
    /// as opposed to the steal *count* in [`WorkerMetrics::steals`].
    pub steal_wait: Duration,
    /// Runs for which this worker's scratch arena was already shaped and
    /// no allocation happened (filled in by the execution layer; the pool
    /// itself leaves it 0).
    pub scratch_reuse: u64,
}

impl WorkerMetrics {
    /// Merge another worker's counters into this one.
    pub fn merge(&mut self, other: &WorkerMetrics) {
        self.morsels += other.morsels;
        self.steals += other.steals;
        self.busy += other.busy;
        self.idle += other.idle;
        self.steal_wait += other.steal_wait;
        self.scratch_reuse += other.scratch_reuse;
    }

    /// Mean time to find remote work, per successful steal.
    pub fn mean_steal_wait(&self) -> Duration {
        if self.steals == 0 {
            Duration::ZERO
        } else {
            self.steal_wait / self.steals as u32
        }
    }
}

/// Metrics of a whole pool run: one entry per worker.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolMetrics {
    /// Per-worker counters, indexed by worker id.
    pub workers: Vec<WorkerMetrics>,
}

impl PoolMetrics {
    /// Total morsels executed across workers.
    pub fn total_morsels(&self) -> u64 {
        self.workers.iter().map(|w| w.morsels).sum()
    }

    /// Total steals across workers.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Total scratch-arena reuses across workers.
    pub fn total_scratch_reuse(&self) -> u64 {
        self.workers.iter().map(|w| w.scratch_reuse).sum()
    }

    /// Total time spent idle (polling + stealing) across workers.
    pub fn total_idle(&self) -> Duration {
        self.workers.iter().map(|w| w.idle).sum()
    }

    /// Mean steal latency across the pool: total steal wait over total
    /// successful steals. Zero when nothing was stolen.
    pub fn mean_steal_wait(&self) -> Duration {
        let steals: u64 = self.total_steals();
        if steals == 0 {
            return Duration::ZERO;
        }
        let wait: Duration = self.workers.iter().map(|w| w.steal_wait).sum();
        wait / steals as u32
    }

    /// Mean fraction of worker wall-clock spent executing morsels
    /// (`busy / (busy + idle)`), in `[0, 1]`. 1.0 for an empty pool.
    pub fn busy_fraction(&self) -> f64 {
        if self.workers.is_empty() {
            return 1.0;
        }
        let (busy, total) = self.workers.iter().fold((0.0, 0.0), |(b, t), w| {
            (
                b + w.busy.as_secs_f64(),
                t + w.busy.as_secs_f64() + w.idle.as_secs_f64(),
            )
        });
        if total <= 0.0 {
            1.0
        } else {
            busy / total
        }
    }

    /// Compact one-line rendering for tables: `m=12 s=3 r=9 busy=97%`.
    pub fn summary(&self) -> String {
        format!(
            "m={} s={} r={} busy={:.0}%",
            self.total_morsels(),
            self.total_steals(),
            self.total_scratch_reuse(),
            self.busy_fraction() * 100.0
        )
    }

    /// Per-worker rendering with balancing detail:
    /// `w0 m=5/s=1/r=4/idle=10.0ms/sw=5.0ms …` — `idle` is total time the
    /// worker spent looking for work, `sw` its mean steal latency.
    pub fn per_worker(&self) -> String {
        self.workers
            .iter()
            .enumerate()
            .map(|(i, w)| {
                format!(
                    "w{i} m={}/s={}/r={}/idle={:.1}ms/sw={:.1}ms",
                    w.morsels,
                    w.steals,
                    w.scratch_reuse,
                    w.idle.as_secs_f64() * 1e3,
                    w.mean_steal_wait().as_secs_f64() * 1e3,
                )
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(morsels: u64, steals: u64, busy_ms: u64, idle_ms: u64) -> WorkerMetrics {
        WorkerMetrics {
            morsels,
            steals,
            busy: Duration::from_millis(busy_ms),
            idle: Duration::from_millis(idle_ms),
            steal_wait: Duration::from_millis(idle_ms / 2),
            scratch_reuse: morsels.saturating_sub(1),
        }
    }

    #[test]
    fn totals_and_busy_fraction() {
        let m = PoolMetrics {
            workers: vec![w(5, 1, 30, 10), w(7, 2, 40, 0)],
        };
        assert_eq!(m.total_morsels(), 12);
        assert_eq!(m.total_steals(), 3);
        let f = m.busy_fraction();
        assert!((f - 70.0 / 80.0).abs() < 1e-9, "{f}");
        assert_eq!(m.total_scratch_reuse(), 10);
        assert!(m.summary().starts_with("m=12 s=3 r=10"));
        assert_eq!(
            m.per_worker(),
            "w0 m=5/s=1/r=4/idle=10.0ms/sw=5.0ms w1 m=7/s=2/r=6/idle=0.0ms/sw=0.0ms"
        );
    }

    #[test]
    fn empty_pool_is_fully_busy() {
        assert_eq!(PoolMetrics::default().busy_fraction(), 1.0);
        assert_eq!(PoolMetrics::default().mean_steal_wait(), Duration::ZERO);
    }

    #[test]
    fn steal_latency_is_wait_over_steals() {
        let m = PoolMetrics {
            workers: vec![w(5, 1, 30, 10), w(7, 3, 40, 6)], // waits: 5ms + 3ms
        };
        assert_eq!(m.mean_steal_wait(), Duration::from_millis(2));
        assert_eq!(m.total_idle(), Duration::from_millis(16));
        assert_eq!(m.workers[1].mean_steal_wait(), Duration::from_millis(1));
        assert_eq!(WorkerMetrics::default().mean_steal_wait(), Duration::ZERO);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = w(1, 0, 5, 5); // r=0
        a.merge(&w(2, 1, 10, 0)); // r=1
        let expected = WorkerMetrics {
            scratch_reuse: 1,
            ..w(3, 1, 15, 5)
        };
        assert_eq!(a, expected);
    }
}
