//! A registry of named instruments with labeled dimensions.
//!
//! The registry is the *naming* layer: callers register
//! `(name, labels)` series once at setup (or lazily on first touch) and
//! get back `Arc` handles — [`CounterCell`], [`GaugeCell`], or a shared
//! [`Histogram`] — whose hot-path operations are single relaxed atomics
//! with no registry lock in sight. The registry lock is only taken at
//! registration and at [`Registry::snapshot`] time.
//!
//! A snapshot is a plain, ordered value tree ([`FamilySnapshot`] →
//! [`SeriesSnapshot`]) that the exposition layer renders to
//! Prometheus-style text or JSON without touching live atomics twice.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use super::hist::{HistSnapshot, Histogram};

/// A monotonically increasing counter series.
#[derive(Default)]
pub struct CounterCell(AtomicU64);

impl CounterCell {
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn bump(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time gauge series (set, not accumulated).
#[derive(Default)]
pub struct GaugeCell(AtomicU64);

impl GaugeCell {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to at least `v`.
    #[inline]
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instrument kind of a family. One name maps to exactly one kind;
/// registering the same name under a different kind panics (a
/// programming error, caught by the first snapshot in any test).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Monotonic sum.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Log-linear distribution.
    Histogram,
}

enum Instrument {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> Kind {
        match self {
            Instrument::Counter(_) => Kind::Counter,
            Instrument::Gauge(_) => Kind::Gauge,
            Instrument::Histogram(_) => Kind::Histogram,
        }
    }
}

/// Label set of one series, sorted by key. Kept small and ordered so it
/// can key a `BTreeMap` and render deterministically.
pub type Labels = Vec<(String, String)>;

fn label_vec(labels: &[(&str, &str)]) -> Labels {
    let mut v: Labels = labels
        .iter()
        .map(|(k, val)| (k.to_string(), val.to_string()))
        .collect();
    v.sort();
    v
}

/// Snapshot value of one series.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(u64),
    /// Fractional gauge level (rates, ratios). Never produced by live
    /// registry instruments — synthesized by reporting layers that
    /// derive rates from windows at snapshot time.
    Float(f64),
    /// Histogram distribution.
    Histogram(HistSnapshot),
}

/// One `(labels, value)` pair of a family snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesSnapshot {
    /// The series' label set, sorted by key.
    pub labels: Labels,
    /// The series' value at snapshot time.
    pub value: Value,
}

/// All series of one named instrument, at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub struct FamilySnapshot {
    /// Instrument name (`snake_case`, no product prefix — the renderer
    /// adds one).
    pub name: String,
    /// Instrument kind shared by every series of the family.
    pub kind: Kind,
    /// Series ordered by label set.
    pub series: Vec<SeriesSnapshot>,
}

#[derive(Default)]
struct Families {
    // name -> (labels -> instrument); BTreeMaps for deterministic order.
    map: BTreeMap<String, BTreeMap<Labels, Instrument>>,
}

/// The registry. Cheap to clone (it is an `Arc` internally); all clones
/// see the same instruments.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Families>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
        project: impl Fn(&Instrument) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let mut inner = self.inner.lock().unwrap();
        let family = inner.map.entry(name.to_string()).or_default();
        let inst = family.entry(label_vec(labels)).or_insert_with(make);
        project(inst)
            .unwrap_or_else(|| panic!("instrument {name:?} registered as {:?}", inst.kind()))
    }

    /// Get or create the counter series `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<CounterCell> {
        self.get_or_insert(
            name,
            labels,
            || Instrument::Counter(Arc::new(CounterCell::default())),
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Get or create the gauge series `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<GaugeCell> {
        self.get_or_insert(
            name,
            labels,
            || Instrument::Gauge(Arc::new(GaugeCell::default())),
            |i| match i {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Get or create the histogram series `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            labels,
            || Instrument::Histogram(Arc::new(Histogram::new())),
            |i| match i {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// A coherent, ordered copy of every registered series.
    pub fn snapshot(&self) -> Vec<FamilySnapshot> {
        let inner = self.inner.lock().unwrap();
        inner
            .map
            .iter()
            .map(|(name, series)| FamilySnapshot {
                name: name.clone(),
                kind: series
                    .values()
                    .next()
                    .map(Instrument::kind)
                    .unwrap_or(Kind::Counter),
                series: series
                    .iter()
                    .map(|(labels, inst)| SeriesSnapshot {
                        labels: labels.clone(),
                        value: match inst {
                            Instrument::Counter(c) => Value::Counter(c.get()),
                            Instrument::Gauge(g) => Value::Gauge(g.get()),
                            Instrument::Histogram(h) => Value::Histogram(h.snapshot()),
                        },
                    })
                    .collect(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_are_shared_by_name_and_labels() {
        let r = Registry::new();
        let a = r.counter("queries", &[("outcome", "complete")]);
        let b = r.counter("queries", &[("outcome", "complete")]);
        let other = r.counter("queries", &[("outcome", "rejected")]);
        a.add(2);
        b.bump();
        other.bump();
        assert_eq!(a.get(), 3);
        assert_eq!(other.get(), 1);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = Registry::new();
        let a = r.counter("x", &[("a", "1"), ("b", "2")]);
        let b = r.counter("x", &[("b", "2"), ("a", "1")]);
        a.bump();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn snapshot_is_ordered_and_typed() {
        let r = Registry::new();
        r.gauge("zz_depth", &[]).set(4);
        r.counter("aa_total", &[("shard", "1")]).add(7);
        r.histogram("mm_latency", &[]).record(5);
        let snap = r.snapshot();
        let names: Vec<_> = snap.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["aa_total", "mm_latency", "zz_depth"]);
        assert_eq!(snap[0].kind, Kind::Counter);
        assert_eq!(snap[0].series[0].labels, vec![("shard".into(), "1".into())]);
        assert_eq!(snap[0].series[0].value, Value::Counter(7));
        match &snap[1].series[0].value {
            Value::Histogram(h) => assert_eq!(h.count(), 1),
            v => panic!("expected histogram, got {v:?}"),
        }
        assert_eq!(snap[2].series[0].value, Value::Gauge(4));
    }

    #[test]
    fn gauge_raise_takes_max() {
        let r = Registry::new();
        let g = r.gauge("peak", &[]);
        g.raise(3);
        g.raise(2);
        assert_eq!(g.get(), 3);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        r.counter("x", &[]);
        r.gauge("x", &[]);
    }
}
