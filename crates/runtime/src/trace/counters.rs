//! The counter registry: a fixed, schema-stable set of cheap `u64`
//! counters covering the paper's explanatory metrics — intersections by
//! kernel, candidates pruned, backtracks, peak partial-embedding depth,
//! local-candidate cache hits, morsel/steal/scratch accounting.
//!
//! Engines accumulate into a worker-local plain [`CounterBlock`] (an
//! unconditional `u64` add — no atomics, no branches on the hot path) and
//! flush the block into the [`crate::trace::Trace`] once per run/worker.
//! Totals across workers are a *merge*: sum counters add, the peak-depth
//! gauge takes the max.

/// One named counter of the registry. The numbering is the wire schema of
/// the JSONL profile — append new counters at the end, never reorder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Merge-kernel set intersections performed.
    IntersectMerge,
    /// Galloping-kernel set intersections performed.
    IntersectGalloping,
    /// Hybrid-kernel set intersections performed.
    IntersectHybrid,
    /// QFilter (BSR block-bitmap) set intersections performed.
    IntersectQfilter,
    /// Candidate vertices removed by filter refinement (all rounds).
    CandidatesPruned,
    /// Filter refinement rounds executed.
    FilterRounds,
    /// Backtracks: partial assignments undone by the enumeration engines.
    Backtracks,
    /// Peak partial-embedding depth reached (a max gauge, not a sum).
    PeakDepth,
    /// Local-candidate reads served from a prebuilt space list instead of
    /// a fresh intersection/scan (TreeIndex tree-edge lists, adaptive LC
    /// cache).
    LcCacheHits,
    /// Search-tree nodes visited (recursive engine invocations).
    Recursions,
    /// Matches emitted.
    Matches,
    /// Morsels executed by the worker pool.
    MorselsExecuted,
    /// Of those, morsels stolen from another worker's queue.
    MorselsStolen,
    /// Runs/morsels that hit the zero-allocation scratch fast path.
    ScratchReuses,
    /// Wall-clock nanoseconds spent executing morsels.
    BusyNs,
    /// Wall-clock nanoseconds spent looking for work (poll + steal).
    IdleNs,
    /// Of `IdleNs`, nanoseconds spent on polls that ended in a steal —
    /// the steal *latency* the parallel table reports.
    StealWaitNs,
    /// Glasgow CP search nodes explored.
    GlasgowNodes,
    /// Glasgow domain-propagation passes on assignment.
    GlasgowPropagations,
    /// Service plan-cache lookups that returned a cached plan.
    PlanCacheHits,
    /// Service plan-cache lookups that had to compile a plan.
    PlanCacheMisses,
    /// Cached plans evicted by the LRU policy (capacity or epoch).
    PlanCacheEvictions,
    /// Queries admitted by the service (queued or started).
    QueriesAdmitted,
    /// Queries rejected by admission control (submission queue full).
    QueriesRejected,
    /// Embeddings delivered through service result streams.
    EmbeddingsStreamed,
    /// Update batches applied to a versioned graph.
    UpdatesApplied,
    /// Snapshots pinned against a versioned graph.
    SnapshotsPinned,
    /// Overlay compactions folding deltas into a fresh CSR base.
    Compactions,
    /// Live overlay edges `|E(view) Δ E(base)|` of the current epoch (a
    /// gauge: merges take the max).
    DeltaEdgesLive,
    /// Embeddings added or retracted by delta-driven incremental
    /// enumeration (instead of full recomputation).
    IncrementalEmbeddings,
    /// Queries fanned out by a sharded router (one per shard per
    /// scatter).
    QueriesFannedOut,
    /// Boundary-crossing embeddings stitched through the halo and kept
    /// by the router's ownership filter.
    BoundaryEmbeddingsStitched,
    /// Halo (ghost) vertices replicated across all shards (a gauge:
    /// merges take the max; set from the current partition).
    HaloVerticesReplicated,
    /// Partition skew: max per-shard local edge count as a percentage of
    /// the even share (100 = perfectly balanced; a gauge).
    ShardSkew,
    /// Count-only runs executed (no embedding materialization; the match
    /// tally rides the per-worker accumulators).
    CountOnlyRuns,
    /// Enumeration runs (and served queries) cut short by a top-k bound.
    TopkEarlyExits,
    /// Plan compilations forced by a semantics mismatch: the same query
    /// under the same graph epoch and base config was already cached
    /// under a *different* semantics fingerprint (plans are shared within
    /// a mode, never across modes).
    SemanticsCacheSplits,
}

impl Counter {
    /// Number of counters in the registry.
    pub const COUNT: usize = 37;

    /// Every counter, in schema order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::IntersectMerge,
        Counter::IntersectGalloping,
        Counter::IntersectHybrid,
        Counter::IntersectQfilter,
        Counter::CandidatesPruned,
        Counter::FilterRounds,
        Counter::Backtracks,
        Counter::PeakDepth,
        Counter::LcCacheHits,
        Counter::Recursions,
        Counter::Matches,
        Counter::MorselsExecuted,
        Counter::MorselsStolen,
        Counter::ScratchReuses,
        Counter::BusyNs,
        Counter::IdleNs,
        Counter::StealWaitNs,
        Counter::GlasgowNodes,
        Counter::GlasgowPropagations,
        Counter::PlanCacheHits,
        Counter::PlanCacheMisses,
        Counter::PlanCacheEvictions,
        Counter::QueriesAdmitted,
        Counter::QueriesRejected,
        Counter::EmbeddingsStreamed,
        Counter::UpdatesApplied,
        Counter::SnapshotsPinned,
        Counter::Compactions,
        Counter::DeltaEdgesLive,
        Counter::IncrementalEmbeddings,
        Counter::QueriesFannedOut,
        Counter::BoundaryEmbeddingsStitched,
        Counter::HaloVerticesReplicated,
        Counter::ShardSkew,
        Counter::CountOnlyRuns,
        Counter::TopkEarlyExits,
        Counter::SemanticsCacheSplits,
    ];

    /// Stable snake_case name — the JSONL field key.
    pub fn name(self) -> &'static str {
        match self {
            Counter::IntersectMerge => "intersect_merge",
            Counter::IntersectGalloping => "intersect_galloping",
            Counter::IntersectHybrid => "intersect_hybrid",
            Counter::IntersectQfilter => "intersect_qfilter",
            Counter::CandidatesPruned => "candidates_pruned",
            Counter::FilterRounds => "filter_rounds",
            Counter::Backtracks => "backtracks",
            Counter::PeakDepth => "peak_depth",
            Counter::LcCacheHits => "lc_cache_hits",
            Counter::Recursions => "recursions",
            Counter::Matches => "matches",
            Counter::MorselsExecuted => "morsels_executed",
            Counter::MorselsStolen => "morsels_stolen",
            Counter::ScratchReuses => "scratch_reuses",
            Counter::BusyNs => "busy_ns",
            Counter::IdleNs => "idle_ns",
            Counter::StealWaitNs => "steal_wait_ns",
            Counter::GlasgowNodes => "glasgow_nodes",
            Counter::GlasgowPropagations => "glasgow_propagations",
            Counter::PlanCacheHits => "plan_cache_hits",
            Counter::PlanCacheMisses => "plan_cache_misses",
            Counter::PlanCacheEvictions => "plan_cache_evictions",
            Counter::QueriesAdmitted => "queries_admitted",
            Counter::QueriesRejected => "queries_rejected",
            Counter::EmbeddingsStreamed => "embeddings_streamed",
            Counter::UpdatesApplied => "updates_applied",
            Counter::SnapshotsPinned => "snapshots_pinned",
            Counter::Compactions => "compactions",
            Counter::DeltaEdgesLive => "delta_edges_live",
            Counter::IncrementalEmbeddings => "incremental_embeddings",
            Counter::QueriesFannedOut => "queries_fanned_out",
            Counter::BoundaryEmbeddingsStitched => "boundary_embeddings_stitched",
            Counter::HaloVerticesReplicated => "halo_vertices_replicated",
            Counter::ShardSkew => "shard_skew",
            Counter::CountOnlyRuns => "count_only_runs",
            Counter::TopkEarlyExits => "topk_early_exits",
            Counter::SemanticsCacheSplits => "semantics_cache_splits",
        }
    }

    /// Look a counter up by its JSONL field key.
    pub fn from_name(name: &str) -> Option<Counter> {
        Counter::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// Whether merging across workers takes the max (gauge) instead of the
    /// sum.
    pub fn is_gauge(self) -> bool {
        matches!(
            self,
            Counter::PeakDepth
                | Counter::DeltaEdgesLive
                | Counter::HaloVerticesReplicated
                | Counter::ShardSkew
        )
    }
}

/// A worker-local block of every registry counter. Plain `u64`s: bumping
/// one is a single add, so the block can stay on the enumeration hot path
/// even when tracing is disabled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterBlock {
    vals: [u64; Counter::COUNT],
}

// Not derived: std only provides `Default` for arrays up to 32 elements.
impl Default for CounterBlock {
    fn default() -> Self {
        CounterBlock {
            vals: [0; Counter::COUNT],
        }
    }
}

impl CounterBlock {
    /// An all-zero block.
    pub fn new() -> Self {
        CounterBlock::default()
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.vals[c as usize] += n;
    }

    /// Add 1 to a counter.
    #[inline]
    pub fn bump(&mut self, c: Counter) {
        self.vals[c as usize] += 1;
    }

    /// Raise a gauge counter to at least `v`.
    #[inline]
    pub fn record_max(&mut self, c: Counter, v: u64) {
        if v > self.vals[c as usize] {
            self.vals[c as usize] = v;
        }
    }

    /// Overwrite a counter (for mirrored values like `busy_ns`).
    #[inline]
    pub fn set(&mut self, c: Counter, v: u64) {
        self.vals[c as usize] = v;
    }

    /// Current value of a counter.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.vals[c as usize]
    }

    /// Merge another block into this one: sums add, gauges take the max.
    pub fn merge(&mut self, other: &CounterBlock) {
        for c in Counter::ALL {
            if c.is_gauge() {
                self.record_max(c, other.get(c));
            } else {
                self.add(c, other.get(c));
            }
        }
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.vals.iter().all(|&v| v == 0)
    }

    /// Iterate the non-zero counters in schema order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL
            .into_iter()
            .filter_map(move |c| (self.get(c) > 0).then_some((c, self.get(c))))
    }

    /// Total set intersections across all four kernels.
    pub fn intersections(&self) -> u64 {
        self.get(Counter::IntersectMerge)
            + self.get(Counter::IntersectGalloping)
            + self.get(Counter::IntersectHybrid)
            + self.get(Counter::IntersectQfilter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for c in Counter::ALL {
            assert_eq!(Counter::from_name(c.name()), Some(c));
        }
        assert_eq!(Counter::from_name("bogus"), None);
        assert_eq!(Counter::ALL.len(), Counter::COUNT);
    }

    #[test]
    fn block_ops() {
        let mut b = CounterBlock::new();
        assert!(b.is_zero());
        b.bump(Counter::Backtracks);
        b.add(Counter::Backtracks, 2);
        b.record_max(Counter::PeakDepth, 5);
        b.record_max(Counter::PeakDepth, 3); // lower: no effect
        assert_eq!(b.get(Counter::Backtracks), 3);
        assert_eq!(b.get(Counter::PeakDepth), 5);
        assert!(!b.is_zero());
        let nz: Vec<_> = b.iter_nonzero().collect();
        assert_eq!(nz, vec![(Counter::Backtracks, 3), (Counter::PeakDepth, 5)]);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = CounterBlock::new();
        a.add(Counter::Recursions, 10);
        a.record_max(Counter::PeakDepth, 4);
        let mut b = CounterBlock::new();
        b.add(Counter::Recursions, 5);
        b.record_max(Counter::PeakDepth, 7);
        a.merge(&b);
        assert_eq!(a.get(Counter::Recursions), 15);
        assert_eq!(a.get(Counter::PeakDepth), 7);
    }

    #[test]
    fn intersections_sum_kernels() {
        let mut b = CounterBlock::new();
        b.add(Counter::IntersectMerge, 1);
        b.add(Counter::IntersectHybrid, 2);
        b.add(Counter::IntersectQfilter, 4);
        assert_eq!(b.intersections(), 7);
    }
}
