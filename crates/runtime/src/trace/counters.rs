//! The counter registry: a fixed, schema-stable set of cheap `u64`
//! counters covering the paper's explanatory metrics — intersections by
//! kernel, candidates pruned, backtracks, peak partial-embedding depth,
//! local-candidate cache hits, morsel/steal/scratch accounting.
//!
//! Engines accumulate into a worker-local plain [`CounterBlock`] (an
//! unconditional `u64` add — no atomics, no branches on the hot path) and
//! flush the block into the [`crate::trace::Trace`] once per run/worker.
//! Totals across workers are a *merge*: sum counters add, the peak-depth
//! gauge takes the max.
//!
//! The registry is defined **once**, in the [`define_counters!`] table
//! below: variant, wire name, and doc line live side by side, so the
//! enum, [`Counter::ALL`], and [`Counter::NAMES`] cannot drift apart (a
//! unit test additionally pins name uniqueness, and a doc-sync test pins
//! every name into OBSERVABILITY.md's registry table).

/// Generates [`Counter`], [`Counter::ALL`] and [`Counter::NAMES`] from a
/// single `(Variant, "wire_name", "doc")` table — the registry's single
/// source of truth. The table order is the wire schema of the JSONL
/// profile: append new counters at the end, never reorder.
macro_rules! define_counters {
    ($(($variant:ident, $name:literal, $doc:literal),)+) => {
        /// One named counter of the registry. The numbering is the wire
        /// schema of the JSONL profile — append new counters at the end,
        /// never reorder.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum Counter {
            $(#[doc = $doc] $variant,)+
        }

        impl Counter {
            /// Number of counters in the registry.
            pub const COUNT: usize = [$(Counter::$variant),+].len();

            /// Every counter, in schema order.
            pub const ALL: [Counter; Counter::COUNT] = [$(Counter::$variant),+];

            /// Every counter's stable snake_case name, in schema order —
            /// `NAMES[c as usize]` is `c`'s JSONL field key and the name
            /// OBSERVABILITY.md's registry table documents.
            pub const NAMES: [&'static str; Counter::COUNT] = [$($name),+];
        }
    };
}

define_counters! {
    (IntersectMerge, "intersect_merge",
     "Merge-kernel set intersections performed."),
    (IntersectGalloping, "intersect_galloping",
     "Galloping-kernel set intersections performed."),
    (IntersectHybrid, "intersect_hybrid",
     "Hybrid-kernel set intersections performed."),
    (IntersectQfilter, "intersect_qfilter",
     "QFilter (BSR block-bitmap) set intersections performed."),
    (CandidatesPruned, "candidates_pruned",
     "Candidate vertices removed by filter refinement (all rounds)."),
    (FilterRounds, "filter_rounds",
     "Filter refinement rounds executed."),
    (Backtracks, "backtracks",
     "Backtracks: partial assignments undone by the enumeration engines."),
    (PeakDepth, "peak_depth",
     "Peak partial-embedding depth reached (a max gauge, not a sum)."),
    (LcCacheHits, "lc_cache_hits",
     "Local-candidate reads served from a prebuilt space list instead of \
      a fresh intersection/scan (TreeIndex tree-edge lists, adaptive LC \
      cache)."),
    (Recursions, "recursions",
     "Search-tree nodes visited (recursive engine invocations)."),
    (Matches, "matches",
     "Matches emitted."),
    (MorselsExecuted, "morsels_executed",
     "Morsels executed by the worker pool."),
    (MorselsStolen, "morsels_stolen",
     "Of those, morsels stolen from another worker's queue."),
    (ScratchReuses, "scratch_reuses",
     "Runs/morsels that hit the zero-allocation scratch fast path."),
    (BusyNs, "busy_ns",
     "Wall-clock nanoseconds spent executing morsels."),
    (IdleNs, "idle_ns",
     "Wall-clock nanoseconds spent looking for work (poll + steal)."),
    (StealWaitNs, "steal_wait_ns",
     "Of `IdleNs`, nanoseconds spent on polls that ended in a steal — \
      the steal *latency* the parallel table reports."),
    (GlasgowNodes, "glasgow_nodes",
     "Glasgow CP search nodes explored."),
    (GlasgowPropagations, "glasgow_propagations",
     "Glasgow domain-propagation passes on assignment."),
    (PlanCacheHits, "plan_cache_hits",
     "Service plan-cache lookups that returned a cached plan."),
    (PlanCacheMisses, "plan_cache_misses",
     "Service plan-cache lookups that had to compile a plan."),
    (PlanCacheEvictions, "plan_cache_evictions",
     "Cached plans evicted by the LRU policy (capacity or epoch)."),
    (QueriesAdmitted, "queries_admitted",
     "Queries admitted by the service (queued or started)."),
    (QueriesRejected, "queries_rejected",
     "Queries rejected by admission control (submission queue full)."),
    (EmbeddingsStreamed, "embeddings_streamed",
     "Embeddings delivered through service result streams."),
    (UpdatesApplied, "updates_applied",
     "Update batches applied to a versioned graph."),
    (SnapshotsPinned, "snapshots_pinned",
     "Snapshots pinned against a versioned graph."),
    (Compactions, "compactions",
     "Overlay compactions folding deltas into a fresh CSR base."),
    (DeltaEdgesLive, "delta_edges_live",
     "Live overlay edges `|E(view) Δ E(base)|` of the current epoch (a \
      gauge: merges take the max)."),
    (IncrementalEmbeddings, "incremental_embeddings",
     "Embeddings added or retracted by delta-driven incremental \
      enumeration (instead of full recomputation)."),
    (QueriesFannedOut, "queries_fanned_out",
     "Queries fanned out by a sharded router (one per shard per \
      scatter)."),
    (BoundaryEmbeddingsStitched, "boundary_embeddings_stitched",
     "Boundary-crossing embeddings stitched through the halo and kept \
      by the router's ownership filter."),
    (HaloVerticesReplicated, "halo_vertices_replicated",
     "Halo (ghost) vertices replicated across all shards (a gauge: \
      merges take the max; set from the current partition)."),
    (ShardSkew, "shard_skew",
     "Partition skew: max per-shard local edge count as a percentage of \
      the even share (100 = perfectly balanced; a gauge)."),
    (CountOnlyRuns, "count_only_runs",
     "Count-only runs executed (no embedding materialization; the match \
      tally rides the per-worker accumulators)."),
    (TopkEarlyExits, "topk_early_exits",
     "Enumeration runs (and served queries) cut short by a top-k bound."),
    (SemanticsCacheSplits, "semantics_cache_splits",
     "Plan compilations forced by a semantics mismatch: the same query \
      under the same graph epoch and base config was already cached \
      under a *different* semantics fingerprint (plans are shared within \
      a mode, never across modes)."),
    (QueriesCancelledByDrop, "queries_cancelled_by_drop",
     "Queries whose terminal `Cancelled` outcome came from the client \
      side — a dropped/cancelled `ResultStream`, including per-shard \
      streams a sharded router cut short after its global cap filled."),
    (WalAppends, "wal_appends",
     "Update-batch and standing-registration records appended to a \
      durability write-ahead log."),
    (WalBytes, "wal_bytes",
     "Bytes appended to durability write-ahead logs, framing included."),
    (SnapshotsWritten, "snapshots_written",
     "On-disk CSR snapshots written by threshold-triggered or manual \
      compaction."),
    (Recoveries, "recoveries",
     "Services opened from a durable directory (snapshot page-in plus \
      WAL-tail replay)."),
    (ReplayedBatches, "replayed_batches",
     "WAL-tail update batches replayed during recovery."),
    (PlansAutotuned, "plans_autotuned",
     "Plans selected by the self-tuning planner's cost model (Auto \
      mode) instead of a caller-fixed pipeline."),
    (ReplansTriggered, "replans_triggered",
     "Jump-redo replans: enumerations bailed out mid-run because the \
      live backtrack count exceeded the model's prediction, then \
      restarted under the next-best combo."),
    (FeedbackRecords, "feedback_records",
     "Completed-run observations (cost, backtracks, per-kernel \
      intersections) folded into the planner's per-canonical-form \
      feedback store."),
    (EstimatorEvals, "estimator_evals",
     "Filter/order/kernel combos scored by the planner's cardinality \
      estimator and cost model."),
}

impl Counter {
    /// Stable snake_case name — the JSONL field key.
    #[inline]
    pub fn name(self) -> &'static str {
        Counter::NAMES[self as usize]
    }

    /// Look a counter up by its JSONL field key.
    pub fn from_name(name: &str) -> Option<Counter> {
        Counter::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// Whether merging across workers takes the max (gauge) instead of the
    /// sum.
    pub fn is_gauge(self) -> bool {
        matches!(
            self,
            Counter::PeakDepth
                | Counter::DeltaEdgesLive
                | Counter::HaloVerticesReplicated
                | Counter::ShardSkew
        )
    }
}

/// A worker-local block of every registry counter. Plain `u64`s: bumping
/// one is a single add, so the block can stay on the enumeration hot path
/// even when tracing is disabled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterBlock {
    vals: [u64; Counter::COUNT],
}

// Not derived: std only provides `Default` for arrays up to 32 elements.
impl Default for CounterBlock {
    fn default() -> Self {
        CounterBlock {
            vals: [0; Counter::COUNT],
        }
    }
}

impl CounterBlock {
    /// An all-zero block.
    pub fn new() -> Self {
        CounterBlock::default()
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.vals[c as usize] += n;
    }

    /// Add 1 to a counter.
    #[inline]
    pub fn bump(&mut self, c: Counter) {
        self.vals[c as usize] += 1;
    }

    /// Raise a gauge counter to at least `v`.
    #[inline]
    pub fn record_max(&mut self, c: Counter, v: u64) {
        if v > self.vals[c as usize] {
            self.vals[c as usize] = v;
        }
    }

    /// Overwrite a counter (for mirrored values like `busy_ns`).
    #[inline]
    pub fn set(&mut self, c: Counter, v: u64) {
        self.vals[c as usize] = v;
    }

    /// Current value of a counter.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.vals[c as usize]
    }

    /// Merge another block into this one: sums add, gauges take the max.
    pub fn merge(&mut self, other: &CounterBlock) {
        for c in Counter::ALL {
            if c.is_gauge() {
                self.record_max(c, other.get(c));
            } else {
                self.add(c, other.get(c));
            }
        }
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.vals.iter().all(|&v| v == 0)
    }

    /// Iterate the non-zero counters in schema order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL
            .into_iter()
            .filter_map(move |c| (self.get(c) > 0).then_some((c, self.get(c))))
    }

    /// Total set intersections across all four kernels.
    pub fn intersections(&self) -> u64 {
        self.get(Counter::IntersectMerge)
            + self.get(Counter::IntersectGalloping)
            + self.get(Counter::IntersectHybrid)
            + self.get(Counter::IntersectQfilter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for c in Counter::ALL {
            assert_eq!(Counter::from_name(c.name()), Some(c));
        }
        assert_eq!(Counter::from_name("bogus"), None);
        assert_eq!(Counter::ALL.len(), Counter::COUNT);
    }

    /// The single-source-of-truth guarantees: the name table covers every
    /// variant exactly once (no duplicates, no drift), and schema order
    /// is the enum's discriminant order.
    #[test]
    fn name_table_is_consistent() {
        assert_eq!(Counter::NAMES.len(), Counter::COUNT);
        let mut seen = std::collections::HashSet::new();
        for name in Counter::NAMES {
            assert!(!name.is_empty());
            assert!(seen.insert(name), "duplicate counter name {name:?}");
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "counter name {name:?} is not snake_case"
            );
        }
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "ALL is not in discriminant order");
            assert_eq!(c.name(), Counter::NAMES[i]);
        }
    }

    /// OBSERVABILITY.md's registry table must document every counter by
    /// its exact wire name — the 30→34 doc drift fixed in PR 6 is the
    /// kind of rot this pins down.
    #[test]
    fn observability_doc_lists_every_counter() {
        let doc = include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../OBSERVABILITY.md"
        ));
        for name in Counter::NAMES {
            assert!(
                doc.contains(&format!("`{name}`")),
                "OBSERVABILITY.md does not document counter `{name}`"
            );
        }
        // The doc's advertised registry size must match the code.
        assert!(
            doc.contains(&format!("{} variants", Counter::COUNT)),
            "OBSERVABILITY.md does not state the registry size {}",
            Counter::COUNT
        );
    }

    #[test]
    fn block_ops() {
        let mut b = CounterBlock::new();
        assert!(b.is_zero());
        b.bump(Counter::Backtracks);
        b.add(Counter::Backtracks, 2);
        b.record_max(Counter::PeakDepth, 5);
        b.record_max(Counter::PeakDepth, 3); // lower: no effect
        assert_eq!(b.get(Counter::Backtracks), 3);
        assert_eq!(b.get(Counter::PeakDepth), 5);
        assert!(!b.is_zero());
        let nz: Vec<_> = b.iter_nonzero().collect();
        assert_eq!(nz, vec![(Counter::Backtracks, 3), (Counter::PeakDepth, 5)]);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = CounterBlock::new();
        a.add(Counter::Recursions, 10);
        a.record_max(Counter::PeakDepth, 4);
        let mut b = CounterBlock::new();
        b.add(Counter::Recursions, 5);
        b.record_max(Counter::PeakDepth, 7);
        a.merge(&b);
        assert_eq!(a.get(Counter::Recursions), 15);
        assert_eq!(a.get(Counter::PeakDepth), 7);
    }

    #[test]
    fn intersections_sum_kernels() {
        let mut b = CounterBlock::new();
        b.add(Counter::IntersectMerge, 1);
        b.add(Counter::IntersectHybrid, 2);
        b.add(Counter::IntersectQfilter, 4);
        assert_eq!(b.intersections(), 7);
    }
}
