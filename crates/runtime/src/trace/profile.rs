//! Run profiles: the machine-readable export of a trace.
//!
//! A [`RunProfile`] is one (dataset, query, config) cell of an experiment
//! table. On the wire it is JSONL — one self-describing object per line —
//! so profiles can be streamed, concatenated across cells, and grepped:
//!
//! ```text
//! {"type":"meta","schema":1,"dataset":"rmat50k","query":"q0",...}
//! {"type":"span","id":0,"parent":null,"name":"run","start_ns":0,"end_ns":123}
//! {"type":"counters","worker":0,"recursions":412,...}
//! {"type":"totals","recursions":412,...}
//! {"type":"events","worker":0,"total":9,"dropped":0,"tail":[...]}
//! ```
//!
//! The same struct renders the human-readable `--trace` span tree
//! ([`RunProfile::render_tree`]) and the flamegraph-compatible
//! folded-stacks dump ([`RunProfile::folded_stacks`]).

use super::counters::{Counter, CounterBlock};
use super::json::Json;
use super::ring::{Event, EventKind};
use super::{TraceSnapshot, WorkerEvents};

/// Wire schema version of the JSONL profile.
pub const PROFILE_SCHEMA: u64 = 1;

/// Identity of the run a profile describes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunMeta {
    /// Data-graph name (e.g. `rmat50k`, `triangle-fixture`).
    pub dataset: String,
    /// Query name or index.
    pub query: String,
    /// Configuration cell (e.g. `morsel-t4`, `glasgow`).
    pub config: String,
    /// Worker threads the run used.
    pub threads: usize,
    /// Whether the run was cancelled / hit a cap (profile is partial).
    pub cancelled: bool,
}

/// One span of a parsed profile (like [`super::SpanRecord`] but with an
/// owned name, since parsed names are not `'static`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileSpan {
    /// Span id (index in emission order).
    pub id: u32,
    /// Parent span id, `None` for roots.
    pub parent: Option<u32>,
    /// Phase name.
    pub name: String,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the trace epoch.
    pub end_ns: u64,
}

impl ProfileSpan {
    /// Span duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// An aggregated node of the rendered span tree: all sibling spans with
/// the same name, collapsed (a run has one `filter` span but hundreds of
/// `morsel` spans — the tree shows `morsel ×312`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// Phase name.
    pub name: String,
    /// How many sibling spans were collapsed into this node.
    pub count: u64,
    /// Summed duration of the collapsed spans, nanoseconds.
    pub total_ns: u64,
    /// Aggregated children, in first-appearance order.
    pub children: Vec<SpanNode>,
}

/// A complete run profile: metadata, spans, per-worker counters, merged
/// totals, and per-worker event-ring tails.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunProfile {
    /// Run identity.
    pub meta: RunMeta,
    /// All spans, in creation order.
    pub spans: Vec<ProfileSpan>,
    /// Flushed per-worker counter blocks `(worker, block)`.
    pub counters: Vec<(usize, CounterBlock)>,
    /// Merge of every per-worker block (sums add, gauges max).
    pub totals: CounterBlock,
    /// Per-worker event-ring tails.
    pub events: Vec<WorkerEvents>,
}

impl RunProfile {
    /// Build a profile from a finished trace's snapshot.
    pub fn from_snapshot(meta: RunMeta, snap: &TraceSnapshot) -> RunProfile {
        RunProfile {
            meta,
            spans: snap
                .spans
                .iter()
                .map(|s| ProfileSpan {
                    id: s.id,
                    parent: s.parent,
                    name: s.name.to_string(),
                    start_ns: s.start_ns,
                    end_ns: s.end_ns,
                })
                .collect(),
            counters: snap.counters.clone(),
            totals: snap.totals(),
            events: snap.events.clone(),
        }
    }

    /// Serialize to JSONL (one object per line, trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let meta = Json::Obj(vec![
            ("type".into(), Json::str("meta")),
            ("schema".into(), Json::u64(PROFILE_SCHEMA)),
            ("dataset".into(), Json::str(&self.meta.dataset)),
            ("query".into(), Json::str(&self.meta.query)),
            ("config".into(), Json::str(&self.meta.config)),
            ("threads".into(), Json::u64(self.meta.threads as u64)),
            ("cancelled".into(), Json::Bool(self.meta.cancelled)),
        ]);
        out.push_str(&meta.to_string_compact());
        out.push('\n');
        for s in &self.spans {
            let line = Json::Obj(vec![
                ("type".into(), Json::str("span")),
                ("id".into(), Json::u64(s.id as u64)),
                (
                    "parent".into(),
                    s.parent.map_or(Json::Null, |p| Json::u64(p as u64)),
                ),
                ("name".into(), Json::str(&s.name)),
                ("start_ns".into(), Json::u64(s.start_ns)),
                ("end_ns".into(), Json::u64(s.end_ns)),
            ]);
            out.push_str(&line.to_string_compact());
            out.push('\n');
        }
        for (worker, block) in &self.counters {
            out.push_str(&counter_line("counters", Some(*worker), block).to_string_compact());
            out.push('\n');
        }
        out.push_str(&counter_line("totals", None, &self.totals).to_string_compact());
        out.push('\n');
        for we in &self.events {
            let tail = we
                .tail
                .iter()
                .map(|e| {
                    Json::Obj(vec![
                        ("t_ns".into(), Json::u64(e.t_ns)),
                        ("kind".into(), Json::str(e.kind.name())),
                        ("arg".into(), Json::u64(e.arg)),
                    ])
                })
                .collect();
            let line = Json::Obj(vec![
                ("type".into(), Json::str("events")),
                ("worker".into(), Json::u64(we.worker as u64)),
                ("total".into(), Json::u64(we.total)),
                ("dropped".into(), Json::u64(we.dropped)),
                ("tail".into(), Json::Arr(tail)),
            ]);
            out.push_str(&line.to_string_compact());
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL profile emitted by [`RunProfile::to_jsonl`].
    pub fn parse_jsonl(text: &str) -> Result<RunProfile, String> {
        let mut profile = RunProfile::default();
        let mut saw_meta = false;
        let mut saw_totals = false;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let ty = v
                .get("type")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {}: missing \"type\"", lineno + 1))?;
            match ty {
                "meta" => {
                    let schema = field_u64(&v, "schema", lineno)?;
                    if schema != PROFILE_SCHEMA {
                        return Err(format!(
                            "line {}: unsupported schema {schema} (want {PROFILE_SCHEMA})",
                            lineno + 1
                        ));
                    }
                    profile.meta = RunMeta {
                        dataset: field_str(&v, "dataset", lineno)?,
                        query: field_str(&v, "query", lineno)?,
                        config: field_str(&v, "config", lineno)?,
                        threads: field_u64(&v, "threads", lineno)? as usize,
                        cancelled: matches!(v.get("cancelled"), Some(Json::Bool(true))),
                    };
                    saw_meta = true;
                }
                "span" => {
                    profile.spans.push(ProfileSpan {
                        id: field_u64(&v, "id", lineno)? as u32,
                        parent: match v.get("parent") {
                            Some(Json::Null) | None => None,
                            Some(p) => Some(
                                p.as_u64()
                                    .ok_or_else(|| format!("line {}: bad \"parent\"", lineno + 1))?
                                    as u32,
                            ),
                        },
                        name: field_str(&v, "name", lineno)?,
                        start_ns: field_u64(&v, "start_ns", lineno)?,
                        end_ns: field_u64(&v, "end_ns", lineno)?,
                    });
                }
                "counters" => {
                    let worker = field_u64(&v, "worker", lineno)? as usize;
                    profile.counters.push((worker, parse_block(&v, lineno)?));
                }
                "totals" => {
                    profile.totals = parse_block(&v, lineno)?;
                    saw_totals = true;
                }
                "events" => {
                    let mut tail = Vec::new();
                    for e in v
                        .get("tail")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| format!("line {}: missing \"tail\"", lineno + 1))?
                    {
                        let kind_name = e
                            .get("kind")
                            .and_then(Json::as_str)
                            .ok_or_else(|| format!("line {}: event missing kind", lineno + 1))?;
                        tail.push(Event {
                            t_ns: field_u64(e, "t_ns", lineno)?,
                            kind: EventKind::from_name(kind_name).ok_or_else(|| {
                                format!("line {}: unknown event kind {kind_name:?}", lineno + 1)
                            })?,
                            arg: field_u64(e, "arg", lineno)?,
                        });
                    }
                    profile.events.push(WorkerEvents {
                        worker: field_u64(&v, "worker", lineno)? as usize,
                        total: field_u64(&v, "total", lineno)?,
                        dropped: field_u64(&v, "dropped", lineno)?,
                        tail,
                    });
                }
                other => return Err(format!("line {}: unknown line type {other:?}", lineno + 1)),
            }
        }
        if !saw_meta {
            return Err("profile has no meta line".to_string());
        }
        if !saw_totals {
            return Err("profile has no totals line".to_string());
        }
        Ok(profile)
    }

    /// Check the structural invariants of a profile:
    /// spans closed with `end >= start`, parents existing earlier spans
    /// whose interval contains the child's, totals equal to the merge of
    /// the per-worker blocks, and event tails with monotone timestamps.
    pub fn validate(&self) -> Result<(), String> {
        for s in &self.spans {
            if s.id as usize >= self.spans.len() || self.spans[s.id as usize].id != s.id {
                return Err(format!("span {} out of order", s.id));
            }
            if s.end_ns == u64::MAX {
                return Err(format!("span {} ({}) never closed", s.id, s.name));
            }
            if s.end_ns < s.start_ns {
                return Err(format!("span {} ({}) ends before it starts", s.id, s.name));
            }
            if let Some(p) = s.parent {
                if p >= s.id {
                    return Err(format!("span {} parent {p} is not an earlier span", s.id));
                }
                let parent = &self.spans[p as usize];
                if s.start_ns < parent.start_ns || s.end_ns > parent.end_ns {
                    return Err(format!(
                        "span {} ({}) [{}, {}] escapes parent {} ({}) [{}, {}]",
                        s.id,
                        s.name,
                        s.start_ns,
                        s.end_ns,
                        parent.id,
                        parent.name,
                        parent.start_ns,
                        parent.end_ns
                    ));
                }
            }
        }
        let mut merged = CounterBlock::new();
        for (_, b) in &self.counters {
            merged.merge(b);
        }
        for c in Counter::ALL {
            if merged.get(c) != self.totals.get(c) {
                return Err(format!(
                    "totals.{} = {} but per-worker blocks merge to {}",
                    c.name(),
                    self.totals.get(c),
                    merged.get(c)
                ));
            }
        }
        for we in &self.events {
            if (we.tail.len() as u64) + we.dropped != we.total {
                return Err(format!(
                    "worker {} events: tail {} + dropped {} != total {}",
                    we.worker,
                    we.tail.len(),
                    we.dropped,
                    we.total
                ));
            }
            if !we.tail.windows(2).all(|w| w[0].t_ns <= w[1].t_ns) {
                return Err(format!("worker {} event tail not monotone", we.worker));
            }
        }
        Ok(())
    }

    /// Aggregate the spans into a tree of [`SpanNode`]s (siblings with the
    /// same name collapsed), in first-appearance order.
    pub fn span_tree(&self) -> Vec<SpanNode> {
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); self.spans.len()];
        let mut roots = Vec::new();
        for s in &self.spans {
            match s.parent {
                Some(p) => children[p as usize].push(s.id),
                None => roots.push(s.id),
            }
        }
        self.aggregate(&roots, &children)
    }

    fn aggregate(&self, ids: &[u32], children: &[Vec<u32>]) -> Vec<SpanNode> {
        let mut order: Vec<String> = Vec::new();
        let mut groups: Vec<(u64, u64, Vec<u32>)> = Vec::new(); // (count, total_ns, member ids)
        for &id in ids {
            let s = &self.spans[id as usize];
            let slot = match order.iter().position(|n| *n == s.name) {
                Some(i) => i,
                None => {
                    order.push(s.name.clone());
                    groups.push((0, 0, Vec::new()));
                    order.len() - 1
                }
            };
            groups[slot].0 += 1;
            groups[slot].1 += s.dur_ns();
            groups[slot].2.push(id);
        }
        order
            .into_iter()
            .zip(groups)
            .map(|(name, (count, total_ns, members))| {
                let kid_ids: Vec<u32> = members
                    .iter()
                    .flat_map(|&m| children[m as usize].iter().copied())
                    .collect();
                SpanNode {
                    name,
                    count,
                    total_ns,
                    children: self.aggregate(&kid_ids, children),
                }
            })
            .collect()
    }

    /// Human-readable per-phase tree (what `--trace` prints): durations,
    /// collapsed-sibling counts, run totals, and per-worker event tails.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {} / {} / {} ({} thread{}{})\n",
            self.meta.dataset,
            self.meta.query,
            self.meta.config,
            self.meta.threads,
            if self.meta.threads == 1 { "" } else { "s" },
            if self.meta.cancelled {
                ", cancelled"
            } else {
                ""
            },
        ));
        fn walk(nodes: &[SpanNode], depth: usize, out: &mut String) {
            for n in nodes {
                let label = if n.count > 1 {
                    format!("{} ×{}", n.name, n.count)
                } else {
                    n.name.clone()
                };
                out.push_str(&format!(
                    "{:indent$}{label:<width$} {}\n",
                    "",
                    fmt_ns(n.total_ns),
                    indent = 2 * depth,
                    width = 28usize.saturating_sub(2 * depth),
                ));
                walk(&n.children, depth + 1, out);
            }
        }
        walk(&self.span_tree(), 1, &mut out);
        if !self.totals.is_zero() {
            out.push_str("  counters:\n");
            for (c, v) in self.totals.iter_nonzero() {
                out.push_str(&format!("    {:<24} {v}\n", c.name()));
            }
        }
        for we in &self.events {
            out.push_str(&format!(
                "  worker {} events (last {} of {}):\n",
                we.worker,
                we.tail.len(),
                we.total
            ));
            for e in &we.tail {
                out.push_str(&format!(
                    "    {:>12} {:<13} arg={}\n",
                    fmt_ns(e.t_ns),
                    e.kind.name(),
                    e.arg
                ));
            }
        }
        out
    }

    /// Flamegraph-compatible folded stacks: one `root;child;leaf self_ns`
    /// line per distinct span path, self time = span time minus child
    /// time (collapsed across same-name siblings).
    pub fn folded_stacks(&self) -> String {
        let mut out = String::new();
        fn walk(nodes: &[SpanNode], prefix: &str, out: &mut String) {
            for n in nodes {
                let path = if prefix.is_empty() {
                    n.name.clone()
                } else {
                    format!("{prefix};{}", n.name)
                };
                let child_ns: u64 = n.children.iter().map(|c| c.total_ns).sum();
                let self_ns = n.total_ns.saturating_sub(child_ns);
                out.push_str(&format!("{path} {self_ns}\n"));
                walk(&n.children, &path, out);
            }
        }
        walk(&self.span_tree(), "", &mut out);
        out
    }
}

fn counter_line(ty: &str, worker: Option<usize>, block: &CounterBlock) -> Json {
    let mut fields = vec![("type".to_string(), Json::str(ty))];
    if let Some(w) = worker {
        fields.push(("worker".to_string(), Json::u64(w as u64)));
    }
    for (c, v) in block.iter_nonzero() {
        fields.push((c.name().to_string(), Json::u64(v)));
    }
    Json::Obj(fields)
}

fn parse_block(v: &Json, lineno: usize) -> Result<CounterBlock, String> {
    let Json::Obj(fields) = v else {
        return Err(format!("line {}: not an object", lineno + 1));
    };
    let mut block = CounterBlock::new();
    for (k, val) in fields {
        if k == "type" || k == "worker" {
            continue;
        }
        let c = Counter::from_name(k)
            .ok_or_else(|| format!("line {}: unknown counter {k:?}", lineno + 1))?;
        let n = val
            .as_u64()
            .ok_or_else(|| format!("line {}: counter {k:?} not a u64", lineno + 1))?;
        block.set(c, n);
    }
    Ok(block)
}

fn field_u64(v: &Json, key: &str, lineno: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {}: missing/bad \"{key}\"", lineno + 1))
}

fn field_str(v: &Json, key: &str, lineno: usize) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("line {}: missing/bad \"{key}\"", lineno + 1))
}

/// Render nanoseconds with an adaptive unit (`412ns`, `3.2µs`, `1.45ms`,
/// `2.31s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ring::EventRing;
    use crate::trace::Trace;

    fn sample_profile() -> RunProfile {
        let t = Trace::enabled();
        {
            let _run = t.span("run");
            {
                let _plan = t.span("plan");
                let _f = t.span("filter");
            }
            let _x = t.span("execute");
        }
        let mut b0 = CounterBlock::new();
        b0.add(Counter::Recursions, 7);
        b0.record_max(Counter::PeakDepth, 3);
        let mut b1 = CounterBlock::new();
        b1.add(Counter::Recursions, 5);
        b1.record_max(Counter::PeakDepth, 4);
        t.flush_counters(0, &b0);
        t.flush_counters(1, &b1);
        let mut r = EventRing::new(4);
        r.push(t.now_ns(), EventKind::MorselStart, 0);
        r.push(t.now_ns(), EventKind::MorselFinish, 0);
        t.flush_ring(0, &r);
        let meta = RunMeta {
            dataset: "fixture".into(),
            query: "q0".into(),
            config: "default".into(),
            threads: 2,
            cancelled: false,
        };
        RunProfile::from_snapshot(meta, &t.snapshot())
    }

    #[test]
    fn jsonl_round_trip_preserves_everything() {
        let p = sample_profile();
        let text = p.to_jsonl();
        let back = RunProfile::parse_jsonl(&text).unwrap();
        assert_eq!(back, p);
        back.validate().unwrap();
    }

    #[test]
    fn validate_catches_bad_nesting() {
        let mut p = sample_profile();
        p.validate().unwrap();
        // child escaping its parent's interval
        p.spans[1].end_ns = p.spans[0].end_ns + 1_000_000;
        assert!(p.validate().unwrap_err().contains("escapes parent"));
    }

    #[test]
    fn validate_catches_total_mismatch() {
        let mut p = sample_profile();
        p.totals.add(Counter::Recursions, 1);
        assert!(p.validate().unwrap_err().contains("totals.recursions"));
    }

    #[test]
    fn validate_catches_open_span() {
        let mut p = sample_profile();
        p.spans[2].end_ns = u64::MAX;
        assert!(p.validate().unwrap_err().contains("never closed"));
    }

    #[test]
    fn tree_collapses_same_name_siblings() {
        let t = Trace::enabled();
        {
            let run = t.span("run");
            let rid = run.id();
            for _ in 0..3 {
                let _m = t.span_under(rid, "morsel");
            }
        }
        let p = RunProfile::from_snapshot(RunMeta::default(), &t.snapshot());
        let tree = p.span_tree();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].children.len(), 1);
        assert_eq!(tree[0].children[0].name, "morsel");
        assert_eq!(tree[0].children[0].count, 3);
        let rendered = p.render_tree();
        assert!(rendered.contains("morsel ×3"), "{rendered}");
    }

    #[test]
    fn folded_stacks_have_paths_and_self_time() {
        let p = sample_profile();
        let folded = p.folded_stacks();
        assert!(folded.contains("run;plan;filter "), "{folded}");
        assert!(folded.contains("run;execute "), "{folded}");
        // every line is "path self_ns"
        for line in folded.lines() {
            let (path, ns) = line.rsplit_once(' ').unwrap();
            assert!(!path.is_empty());
            ns.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn parse_rejects_malformed_profiles() {
        assert!(RunProfile::parse_jsonl("").is_err()); // no meta
        assert!(RunProfile::parse_jsonl("{\"type\":\"meta\",\"schema\":99,\"dataset\":\"d\",\"query\":\"q\",\"config\":\"c\",\"threads\":1}").is_err());
        let ok = sample_profile().to_jsonl();
        let broken = ok.replace("\"recursions\"", "\"not_a_counter\"");
        assert!(RunProfile::parse_jsonl(&broken).is_err());
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(412), "412ns");
        assert_eq!(fmt_ns(3_200), "3.2µs");
        assert_eq!(fmt_ns(1_450_000), "1.45ms");
        assert_eq!(fmt_ns(2_310_000_000), "2.31s");
    }
}
