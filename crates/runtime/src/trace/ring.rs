//! Per-worker last-N event log.
//!
//! Each worker owns one [`EventRing`] for the duration of a run — no
//! sharing, no locks, no atomics; pushing an event is an array write and
//! a cursor bump. The ring keeps only the newest [`EventRing::capacity`]
//! events (older ones are overwritten), which is exactly what a
//! post-mortem of a slow or cancelled run needs: the *tail* of what each
//! worker was doing, at a cost that never grows with run length. Rings
//! are flushed into the owning [`crate::trace::Trace`] when the worker
//! finishes (or is cancelled).

/// What happened, in one worker, at one instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A morsel began executing (`arg` = morsel sequence number).
    MorselStart,
    /// A morsel finished (`arg` = morsel sequence number).
    MorselFinish,
    /// A morsel was stolen from another worker's queue (`arg` = the
    /// thief's morsel sequence number).
    Steal,
    /// The run's cancel token fired (`arg`: 0 = stop/cap, 1 = deadline).
    Cancel,
    /// This worker drove the global match count to the cap (`arg` = cap).
    CapHit,
    /// A filter refinement round completed (`arg` = candidates pruned in
    /// the round).
    FilterRound,
}

impl EventKind {
    /// Stable snake_case name — the JSONL field value.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::MorselStart => "morsel_start",
            EventKind::MorselFinish => "morsel_finish",
            EventKind::Steal => "steal",
            EventKind::Cancel => "cancel",
            EventKind::CapHit => "cap_hit",
            EventKind::FilterRound => "filter_round",
        }
    }

    /// Look an event kind up by its JSONL name.
    pub fn from_name(name: &str) -> Option<EventKind> {
        [
            EventKind::MorselStart,
            EventKind::MorselFinish,
            EventKind::Steal,
            EventKind::Cancel,
            EventKind::CapHit,
            EventKind::FilterRound,
        ]
        .into_iter()
        .find(|k| k.name() == name)
    }
}

/// One logged event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the trace epoch (monotonic clock).
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific argument (see [`EventKind`]).
    pub arg: u64,
}

/// Default ring capacity: enough tail to see the last few morsels of
/// every worker without the log growing with run length.
pub const DEFAULT_RING_CAPACITY: usize = 64;

/// A fixed-capacity overwrite-oldest event log owned by one worker.
#[derive(Clone, Debug)]
pub struct EventRing {
    buf: Vec<Event>,
    cap: usize,
    /// Total events ever pushed (>= buf.len(); the difference is how many
    /// were overwritten).
    pushed: u64,
}

impl EventRing {
    /// A ring holding the newest `cap` events (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        EventRing {
            buf: Vec::with_capacity(cap),
            cap,
            pushed: 0,
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events ever pushed, including overwritten ones.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Events overwritten (lost from the tail).
    pub fn dropped(&self) -> u64 {
        self.pushed - self.buf.len() as u64
    }

    /// Log one event, overwriting the oldest once full.
    #[inline]
    pub fn push(&mut self, t_ns: u64, kind: EventKind, arg: u64) {
        let e = Event { t_ns, kind, arg };
        if self.buf.len() < self.cap {
            self.buf.push(e);
        } else {
            self.buf[(self.pushed as usize) % self.cap] = e;
        }
        self.pushed += 1;
    }

    /// The retained tail, oldest first.
    pub fn tail(&self) -> Vec<Event> {
        if self.buf.len() < self.cap {
            return self.buf.clone();
        }
        let split = (self.pushed as usize) % self.cap;
        let mut out = Vec::with_capacity(self.cap);
        out.extend_from_slice(&self.buf[split..]);
        out.extend_from_slice(&self.buf[..split]);
        out
    }
}

impl Default for EventRing {
    fn default() -> Self {
        EventRing::new(DEFAULT_RING_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_newest_in_order() {
        let mut r = EventRing::new(4);
        for i in 0..10u64 {
            r.push(i, EventKind::MorselStart, i);
        }
        assert_eq!(r.total_pushed(), 10);
        assert_eq!(r.dropped(), 6);
        let tail = r.tail();
        assert_eq!(tail.len(), 4);
        assert_eq!(
            tail.iter().map(|e| e.arg).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        // timestamps stay monotone in the tail
        assert!(tail.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut r = EventRing::new(8);
        r.push(1, EventKind::Steal, 2);
        r.push(2, EventKind::Cancel, 0);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.tail().len(), 2);
        assert_eq!(r.tail()[1].kind, EventKind::Cancel);
    }

    #[test]
    fn kind_names_round_trip() {
        for k in [
            EventKind::MorselStart,
            EventKind::MorselFinish,
            EventKind::Steal,
            EventKind::Cancel,
            EventKind::CapHit,
            EventKind::FilterRound,
        ] {
            assert_eq!(EventKind::from_name(k.name()), Some(k));
        }
        assert_eq!(EventKind::from_name("nope"), None);
    }
}
