//! `sm-trace` — structured tracing for the whole matching pipeline.
//!
//! One [`Trace`] handle is attached to a run's configuration and cloned
//! into every phase: graph loading, filtering, ordering, candidate-space
//! construction, enumeration, and the worker pool. It provides
//!
//! * **hierarchical spans** ([`Trace::span`]) timed on the monotonic
//!   clock, with implicit per-thread parenting (RAII guards) plus
//!   explicit parenting ([`Trace::span_under`]) for worker threads;
//! * a **counter registry** ([`counters`]) flushed once per run/worker
//!   from plain worker-local [`CounterBlock`]s, so the hot path never
//!   touches shared state;
//! * **per-worker event rings** ([`ring`]) holding the last-N
//!   morsel/steal/cancel events for post-morteming slow or cancelled
//!   runs;
//! * **exporters** ([`profile`]): a human-readable span tree, a JSONL
//!   run profile, and a flamegraph-compatible folded-stacks dump.
//!
//! The disabled handle ([`Trace::disabled`]) is a `None` — every call is
//! one branch on an `Option`, so the layer stays permanently wired into
//! the hot paths at <2% cost.

pub mod counters;
pub mod json;
pub mod profile;
pub mod ring;

pub use counters::{Counter, CounterBlock};
pub use json::Json;
pub use profile::{RunProfile, SpanNode};
pub use ring::{Event, EventKind, EventRing, DEFAULT_RING_CAPACITY};

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

/// Sentinel `end_ns` of a span that has not closed yet.
const OPEN: u64 = u64::MAX;

/// One completed (or still-open) span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id (index into the trace's span table).
    pub id: u32,
    /// Parent span id, `None` for roots.
    pub parent: Option<u32>,
    /// Phase name (stable, snake_case-ish: `run`, `plan`, `filter`, …).
    pub name: &'static str,
    /// Start, nanoseconds since the trace epoch (monotonic clock).
    pub start_ns: u64,
    /// End, nanoseconds since the trace epoch; equals `u64::MAX` while
    /// the span is open.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Whether the span has been closed.
    pub fn closed(&self) -> bool {
        self.end_ns != OPEN
    }

    /// Span duration in nanoseconds (0 while open).
    pub fn dur_ns(&self) -> u64 {
        if self.closed() {
            self.end_ns.saturating_sub(self.start_ns)
        } else {
            0
        }
    }
}

/// The event-ring tail of one worker, as flushed into the trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerEvents {
    /// Worker id.
    pub worker: usize,
    /// Total events the worker pushed (including overwritten ones).
    pub total: u64,
    /// Events overwritten before the flush.
    pub dropped: u64,
    /// The retained tail, oldest first.
    pub tail: Vec<Event>,
}

/// Everything a finished trace collected, copied out for export.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// All spans, in creation order (ids are indices).
    pub spans: Vec<SpanRecord>,
    /// Flushed per-worker counter blocks `(worker, block)`; a worker may
    /// appear more than once (e.g. one flush per run on reused workers).
    pub counters: Vec<(usize, CounterBlock)>,
    /// Flushed per-worker event-ring tails.
    pub events: Vec<WorkerEvents>,
}

impl TraceSnapshot {
    /// Merge of every flushed counter block: sums add, gauges take the
    /// max — the run totals the tables report.
    pub fn totals(&self) -> CounterBlock {
        let mut t = CounterBlock::new();
        for (_, b) in &self.counters {
            t.merge(b);
        }
        t
    }
}

struct TraceInner {
    t0: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    /// Per-thread stack of open span ids, for implicit parenting.
    stacks: Mutex<HashMap<ThreadId, Vec<u32>>>,
    counters: Mutex<Vec<(usize, CounterBlock)>>,
    events: Mutex<Vec<WorkerEvents>>,
    /// Set when a cancel/cap event is recorded, so exporters can label
    /// the profile as partial.
    cancelled: AtomicBool,
}

/// A cloneable tracing handle. `disabled()` is a `None` inside — every
/// operation short-circuits on one branch, which is what keeps the layer
/// affordable on permanently-instrumented hot paths.
#[derive(Clone, Default)]
pub struct Trace(Option<Arc<TraceInner>>);

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "Trace(enabled)"
        } else {
            "Trace(disabled)"
        })
    }
}

impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Trace {
    /// The no-op handle (the default on every config).
    pub fn disabled() -> Trace {
        Trace(None)
    }

    /// A live trace with its epoch at "now".
    pub fn enabled() -> Trace {
        Trace(Some(Arc::new(TraceInner {
            t0: Instant::now(),
            spans: Mutex::new(Vec::new()),
            stacks: Mutex::new(HashMap::new()),
            counters: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
            cancelled: AtomicBool::new(false),
        })))
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Nanoseconds since the trace epoch (0 when disabled).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &self.0 {
            Some(inner) => inner.t0.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Open a span under the current thread's innermost open span (or as
    /// a root). Close it by dropping the guard.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let parent = self.current_span();
        self.span_under(parent, name)
    }

    /// Open a span under an explicit parent — how worker threads attach
    /// their spans beneath the coordinator's `parallel` span. The new
    /// span still becomes the innermost span *of this thread*, so nested
    /// `span()` calls parent correctly.
    pub fn span_under(&self, parent: Option<u32>, name: &'static str) -> SpanGuard {
        let Some(inner) = &self.0 else {
            return SpanGuard { trace: None, id: 0 };
        };
        let start_ns = inner.t0.elapsed().as_nanos() as u64;
        let id = {
            let mut spans = inner.spans.lock().unwrap();
            let id = spans.len() as u32;
            spans.push(SpanRecord {
                id,
                parent,
                name,
                start_ns,
                end_ns: OPEN,
            });
            id
        };
        inner
            .stacks
            .lock()
            .unwrap()
            .entry(std::thread::current().id())
            .or_default()
            .push(id);
        SpanGuard {
            trace: Some(Arc::clone(inner)),
            id,
        }
    }

    /// The current thread's innermost open span id, if any.
    pub fn current_span(&self) -> Option<u32> {
        let inner = self.0.as_ref()?;
        inner
            .stacks
            .lock()
            .unwrap()
            .get(&std::thread::current().id())
            .and_then(|s| s.last().copied())
    }

    /// Flush a worker-local counter block into the registry. Call once
    /// per run (sequential) or once per worker (parallel); totals are the
    /// merge of every flushed block. Zero blocks are skipped.
    pub fn flush_counters(&self, worker: usize, block: &CounterBlock) {
        if let Some(inner) = &self.0 {
            if !block.is_zero() {
                inner.counters.lock().unwrap().push((worker, block.clone()));
            }
        }
    }

    /// Flush a worker's event-ring tail. Empty rings are skipped.
    pub fn flush_ring(&self, worker: usize, ring: &EventRing) {
        if let Some(inner) = &self.0 {
            if ring.total_pushed() > 0 {
                inner.events.lock().unwrap().push(WorkerEvents {
                    worker,
                    total: ring.total_pushed(),
                    dropped: ring.dropped(),
                    tail: ring.tail(),
                });
            }
        }
    }

    /// Mark the run as cancelled/capped so exporters can label the
    /// profile as partial.
    pub fn mark_cancelled(&self) {
        if let Some(inner) = &self.0 {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Whether [`Trace::mark_cancelled`] was called.
    pub fn was_cancelled(&self) -> bool {
        match &self.0 {
            Some(inner) => inner.cancelled.load(Ordering::Relaxed),
            None => false,
        }
    }

    /// Copy out everything collected so far. Returns an empty snapshot
    /// for a disabled handle.
    pub fn snapshot(&self) -> TraceSnapshot {
        match &self.0 {
            Some(inner) => TraceSnapshot {
                spans: inner.spans.lock().unwrap().clone(),
                counters: inner.counters.lock().unwrap().clone(),
                events: inner.events.lock().unwrap().clone(),
            },
            None => TraceSnapshot::default(),
        }
    }
}

/// RAII guard returned by [`Trace::span`]: dropping it closes the span
/// at "now" and pops it from the owning thread's stack. Guards from a
/// disabled trace are inert.
#[must_use = "dropping the guard is what closes the span"]
pub struct SpanGuard {
    trace: Option<Arc<TraceInner>>,
    id: u32,
}

impl SpanGuard {
    /// The span id (for [`Trace::span_under`] from other threads).
    /// `None` for guards of a disabled trace.
    pub fn id(&self) -> Option<u32> {
        self.trace.as_ref().map(|_| self.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = &self.trace else { return };
        let end_ns = inner.t0.elapsed().as_nanos() as u64;
        inner.spans.lock().unwrap()[self.id as usize].end_ns = end_ns;
        let mut stacks = inner.stacks.lock().unwrap();
        if let Some(stack) = stacks.get_mut(&std::thread::current().id()) {
            // Usually the top; remove by id to survive out-of-order drops.
            if let Some(pos) = stack.iter().rposition(|&s| s == self.id) {
                stack.remove(pos);
            }
            if stack.is_empty() {
                stacks.remove(&std::thread::current().id());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let t = Trace::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.now_ns(), 0);
        {
            let g = t.span("run");
            assert_eq!(g.id(), None);
            assert_eq!(t.current_span(), None);
        }
        let mut b = CounterBlock::new();
        b.bump(Counter::Recursions);
        t.flush_counters(0, &b);
        let mut r = EventRing::default();
        r.push(0, EventKind::Steal, 1);
        t.flush_ring(0, &r);
        let snap = t.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.events.is_empty());
        assert!(snap.totals().is_zero());
    }

    #[test]
    fn spans_nest_within_a_thread() {
        let t = Trace::enabled();
        {
            let run = t.span("run");
            assert_eq!(t.current_span(), run.id());
            {
                let plan = t.span("plan");
                let _filter = t.span("filter");
                let snap = t.snapshot();
                assert_eq!(snap.spans[1].parent, run.id());
                assert_eq!(snap.spans[2].parent, plan.id());
                assert!(!snap.spans[2].closed());
            }
            // children closed, run still open and current again
            assert_eq!(t.current_span(), run.id());
        }
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 3);
        assert!(snap.spans.iter().all(|s| s.closed()));
        assert!(snap.spans.iter().all(|s| s.end_ns >= s.start_ns));
        assert_eq!(snap.spans[0].parent, None);
    }

    #[test]
    fn span_under_parents_across_threads() {
        let t = Trace::enabled();
        let parallel = t.span("parallel");
        let pid = parallel.id();
        let t2 = t.clone();
        std::thread::scope(|s| {
            s.spawn(|| {
                let w = t2.span_under(pid, "worker");
                // implicit nesting continues on the worker thread
                let m = t2.span("morsel");
                drop(m);
                drop(w);
            });
        });
        drop(parallel);
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 3);
        let worker = snap.spans.iter().find(|s| s.name == "worker").unwrap();
        let morsel = snap.spans.iter().find(|s| s.name == "morsel").unwrap();
        assert_eq!(worker.parent, pid);
        assert_eq!(morsel.parent, Some(worker.id));
        assert!(snap.spans.iter().all(|s| s.closed()));
    }

    #[test]
    fn totals_merge_flushed_blocks() {
        let t = Trace::enabled();
        let mut a = CounterBlock::new();
        a.add(Counter::Recursions, 10);
        a.record_max(Counter::PeakDepth, 3);
        let mut b = CounterBlock::new();
        b.add(Counter::Recursions, 5);
        b.record_max(Counter::PeakDepth, 7);
        t.flush_counters(0, &a);
        t.flush_counters(1, &b);
        t.flush_counters(2, &CounterBlock::new()); // zero block skipped
        let snap = t.snapshot();
        assert_eq!(snap.counters.len(), 2);
        let totals = snap.totals();
        assert_eq!(totals.get(Counter::Recursions), 15);
        assert_eq!(totals.get(Counter::PeakDepth), 7);
    }

    #[test]
    fn ring_flush_keeps_worker_tail() {
        let t = Trace::enabled();
        let mut r = EventRing::new(2);
        r.push(1, EventKind::MorselStart, 0);
        r.push(2, EventKind::MorselFinish, 0);
        r.push(3, EventKind::Cancel, 1);
        t.flush_ring(4, &r);
        t.flush_ring(5, &EventRing::default()); // empty skipped
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].worker, 4);
        assert_eq!(snap.events[0].total, 3);
        assert_eq!(snap.events[0].dropped, 1);
        assert_eq!(snap.events[0].tail.last().unwrap().kind, EventKind::Cancel);
    }

    #[test]
    fn cancelled_flag() {
        let t = Trace::enabled();
        assert!(!t.was_cancelled());
        t.mark_cancelled();
        assert!(t.was_cancelled());
        assert!(!Trace::disabled().was_cancelled());
    }

    #[test]
    fn monotone_now() {
        let t = Trace::enabled();
        let a = t.now_ns();
        let b = t.now_ns();
        assert!(b >= a);
    }
}
