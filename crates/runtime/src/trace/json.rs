//! A minimal JSON value, writer and parser — just enough for the JSONL
//! run profiles, kept in-repo so the workspace stays hermetic (no serde).
//!
//! Numbers are `f64` on the wire; integral values up to 2^53 round-trip
//! exactly, which covers every counter and nanosecond timestamp a profile
//! carries.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integral values written without a fraction).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for an integral number.
    pub fn u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object field lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as u64, if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as &str, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize to a fresh string.
    pub fn to_string_compact(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    /// Parse one JSON document. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe
                // to do bytewise: copy continuation bytes with the lead).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).expect("input was utf-8"));
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Json::Obj(vec![
            ("type".into(), Json::str("span")),
            ("id".into(), Json::u64(3)),
            ("parent".into(), Json::Null),
            ("ok".into(), Json::Bool(true)),
            (
                "xs".into(),
                Json::Arr(vec![Json::u64(1), Json::Num(2.5), Json::str("a\"b\n")]),
            ),
        ]);
        let s = v.to_string_compact();
        let back = Json::parse(&s).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("id").unwrap().as_u64(), Some(3));
        assert_eq!(back.get("type").unwrap().as_str(), Some("span"));
        assert_eq!(back.get("xs").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(back.get("missing"), None);
    }

    #[test]
    fn integral_numbers_have_no_fraction() {
        assert_eq!(
            Json::u64(1_000_000_000_000).to_string_compact(),
            "1000000000000"
        );
        assert_eq!(Json::Num(2.5).to_string_compact(), "2.5");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parses_nested_whitespace() {
        let v = Json::parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert!(v.get("a").is_some());
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::Str("héllo→世界".to_string());
        let s = v.to_string_compact();
        assert_eq!(Json::parse(&s).unwrap(), v);
        // \u escapes parse too
        assert_eq!(
            Json::parse("\"\\u0041\"").unwrap(),
            Json::Str("A".to_string())
        );
    }
}
