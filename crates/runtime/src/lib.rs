//! `sm-runtime` — the hermetic execution substrate the rest of the
//! subgraph-matching system runs on.
//!
//! The study's engines (and the paper's Table 1 survey) all face the same
//! systems problems once a query leaves the single-threaded toy regime:
//!
//! * **skewed intra-query parallelism** — the subtrees below depth-0
//!   candidates of a power-law data graph differ in size by orders of
//!   magnitude, so a static partition of the root leaves most workers idle
//!   while one grinds a hub ([`pool`] fixes this with morsel-driven work
//!   stealing, after Leis et al., SIGMOD 2014);
//! * **multi-query fairness** — a service multiplexing many concurrent
//!   queries onto one pool must dispatch at morsel granularity,
//!   round-robin across the active runs, or one huge query starves every
//!   small one ([`sched`]);
//! * **cooperative cancellation** — per-query kill limits, global match
//!   caps and caller-side aborts all need the same "poll a flag cheaply,
//!   stop soon" protocol ([`cancel`]);
//! * **observability** — scaling claims are guesses unless per-worker
//!   morsel/steal/busy counters are reported ([`metrics`]), and phase
//!   claims are guesses unless spans, counters and event logs share one
//!   schema ([`trace`]);
//! * **hermetic builds** — the workspace must compile and test fully
//!   offline, so the randomness the generators and the property tests need
//!   lives in-repo ([`rng`], [`check`]) instead of in external crates.
//!
//! Everything here is `std`-only by design: no external dependencies, no
//! build scripts, no feature detection.

#![warn(missing_docs)]

pub mod cancel;
pub mod check;
pub mod metrics;
pub mod pool;
pub mod rng;
pub mod sched;
pub mod trace;

pub use cancel::{CancelReason, CancelToken};
pub use metrics::{HistSnapshot, Histogram, PoolMetrics, Registry, RollingWindow, WorkerMetrics};
pub use pool::{morsel_size_for, MorselQueue, Popped};
pub use rng::Rng64;
pub use sched::{Claim, FairScheduler, SourceId};
pub use trace::{Counter, CounterBlock, EventKind, EventRing, RunProfile, Trace};
