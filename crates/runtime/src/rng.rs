//! In-repo pseudo-random number generation: splitmix64 seeding and
//! xoshiro256** generation (Blackman & Vigna), the de-facto standard
//! non-cryptographic generator pair.
//!
//! This replaces the external `rand` crate for everything the system
//! needs — workload generators, random matching orders, the randomized
//! test harness — so the workspace builds fully offline. Sequences are
//! stable across platforms and releases: generated workloads are part of
//! the experiment fixtures and must not drift underneath them.

/// One splitmix64 step: advances `*state` and returns the next output.
///
/// Used directly for seed expansion and for deriving independent
/// substream seeds (e.g. one per test case) from a base seed.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256** generator. 256 bits of state, period `2^256 − 1`,
/// passes BigCrush; seeded from a single `u64` via splitmix64 (the
/// initialization the xoshiro authors recommend).
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Seed deterministically from a single `u64`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, n)` without modulo bias (Lemire's
    /// widening-multiply rejection method). Panics if `n == 0`.
    #[inline]
    pub fn next_u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform draw from a half-open integer range. Panics on an empty
    /// range.
    #[inline]
    pub fn gen_range<T: RangeInt>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_u64_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Uniformly chosen element, `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.next_u64_below(xs.len() as u64) as usize])
        }
    }

    /// Derive an independent generator (a fresh substream seeded from this
    /// one's output).
    pub fn fork(&mut self) -> Rng64 {
        Rng64::seed_from_u64(self.next_u64())
    }
}

/// Integer types [`Rng64::gen_range`] can sample uniformly.
pub trait RangeInt: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample(rng: &mut Rng64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            #[inline]
            fn sample(rng: &mut Rng64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range {lo}..{hi}");
                let span = (hi as u64) - (lo as u64);
                lo + rng.next_u64_below(span) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_splitmix_values() {
        // Reference values from the splitmix64 test vectors (seed 1234567).
        let mut s = 1234567u64;
        assert_eq!(splitmix64(&mut s), 6457827717110365317);
        assert_eq!(splitmix64(&mut s), 3203168211198807973);
    }

    #[test]
    fn range_bounds_and_coverage() {
        let mut rng = Rng64::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(0usize..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
        for _ in 0..1000 {
            let x = rng.gen_range(5u32..8);
            assert!((5..8).contains(&x));
        }
        // single-element range
        assert_eq!(rng.gen_range(3u64..4), 3);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng64::seed_from_u64(0).gen_range(5u32..5);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng64::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bool_probabilities() {
        let mut rng = Rng64::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted); // astronomically unlikely to be identity
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = Rng64::seed_from_u64(5);
        let xs = [10, 20, 30];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*rng.choose(&xs).unwrap());
        }
        assert_eq!(seen.len(), 3);
        assert!(rng.choose::<u32>(&[]).is_none());
    }

    #[test]
    fn fork_is_independent() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = a.fork();
        // forked stream differs from the parent's continuation
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn no_modulo_bias_smell() {
        // For n = 3 * 2^62 the naive modulo would be badly biased; check
        // the three buckets are near-uniform.
        let n = 3u64 << 62;
        let mut rng = Rng64::seed_from_u64(77);
        let mut buckets = [0u32; 3];
        for _ in 0..3000 {
            let x = rng.next_u64_below(n);
            buckets[(x / (1u64 << 62)) as usize] += 1;
        }
        for b in buckets {
            assert!((850..1150).contains(&b), "{buckets:?}");
        }
    }
}
