//! k-core decomposition (the paper only needs the 2-core).
//!
//! CFL's ordering places *core vertices* — members of the 2-core of the
//! query — at the front of the matching order, and several orderings treat
//! degree-one vertices (the complement of the 2-core in trees-with-whiskers)
//! specially.

use crate::graph::Graph;
use crate::types::VertexId;

/// Core number of every vertex (the largest `k` such that the vertex
/// belongs to the k-core), computed by the standard peeling algorithm in
/// `O(|E|)` with bucket queues.
pub fn core_numbers(g: &Graph) -> Vec<u32> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();
    let max_deg = *degree.iter().max().unwrap();
    // bucket sort vertices by degree
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &degree {
        bin[d] += 1;
    }
    let mut start = 0usize;
    for b in bin.iter_mut().take(max_deg + 1) {
        let c = *b;
        *b = start;
        start += c;
    }
    bin[max_deg + 1] = start;
    let mut pos = vec![0usize; n];
    let mut vert = vec![0 as VertexId; n];
    {
        let mut cursor = bin.clone();
        for v in 0..n {
            let d = degree[v];
            pos[v] = cursor[d];
            vert[cursor[d]] = v as VertexId;
            cursor[d] += 1;
        }
    }
    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = vert[i];
        core[v as usize] = degree[v as usize] as u32;
        for &w in g.neighbors(v) {
            let w = w as usize;
            if degree[w] > degree[v as usize] {
                // move w one bucket down
                let dw = degree[w];
                let pw = pos[w];
                let pfirst = bin[dw];
                let vfirst = vert[pfirst];
                if v as usize != vfirst as usize {
                    vert.swap(pw, pfirst);
                    pos[w] = pfirst;
                    pos[vfirst as usize] = pw;
                }
                bin[dw] += 1;
                degree[w] -= 1;
            }
        }
    }
    core
}

/// Vertices in the 2-core of `g` (possibly empty, e.g. for trees).
pub fn two_core(g: &Graph) -> Vec<VertexId> {
    core_numbers(g)
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c >= 2)
        .map(|(v, _)| v as VertexId)
        .collect()
}

/// Membership mask for the 2-core.
pub fn two_core_mask(g: &Graph) -> Vec<bool> {
    core_numbers(g).iter().map(|&c| c >= 2).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn tree_has_empty_two_core() {
        let g = graph_from_edges(&[0; 4], &[(0, 1), (1, 2), (1, 3)]);
        assert!(two_core(&g).is_empty());
        assert_eq!(core_numbers(&g), vec![1, 1, 1, 1]);
    }

    #[test]
    fn triangle_with_whisker() {
        // triangle 0-1-2 plus pendant 3 on 2
        let g = graph_from_edges(&[0; 4], &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(two_core(&g), vec![0, 1, 2]);
        let mask = two_core_mask(&g);
        assert_eq!(mask, vec![true, true, true, false]);
    }

    #[test]
    fn clique_core_numbers() {
        let g = graph_from_edges(&[0; 4], &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(core_numbers(&g), vec![3, 3, 3, 3]);
    }

    #[test]
    fn cycle_is_its_own_two_core() {
        let g = graph_from_edges(&[0; 5], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(two_core(&g).len(), 5);
    }

    #[test]
    fn empty_and_isolated() {
        let g = graph_from_edges(&[], &[]);
        assert!(core_numbers(&g).is_empty());
        let g = graph_from_edges(&[0, 0], &[]);
        assert_eq!(core_numbers(&g), vec![0, 0]);
    }

    #[test]
    fn two_triangles_joined_by_path_all_in_two_core() {
        // 0-1-2 triangle, 5-6-7 triangle, path 2-3-4-5: every vertex has
        // degree >= 2 so nothing peels — the whole graph is its 2-core.
        let g = graph_from_edges(
            &[0; 8],
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (5, 7),
            ],
        );
        let core = core_numbers(&g);
        assert!(core.iter().all(|&c| c == 2));
    }

    #[test]
    fn pendant_path_peels_off() {
        // triangle 0-1-2 with pendant path 2-3-4
        let g = graph_from_edges(&[0; 5], &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let core = core_numbers(&g);
        assert_eq!(core, vec![2, 2, 2, 1, 1]);
    }
}
