//! Fundamental identifier types shared across the workspace.

/// Identifier of a vertex within a [`crate::Graph`].
///
/// Vertices are dense indices in `0..n`; `u32` keeps adjacency arrays
/// compact (the paper's largest stand-in graphs have well under 2^32
/// vertices) and halves cache traffic versus `usize` on 64-bit targets.
pub type VertexId = u32;

/// Vertex label drawn from the label alphabet Σ.
pub type Label = u32;

/// Sentinel for "no vertex", used in parent arrays and partial matches.
pub const NO_VERTEX: VertexId = VertexId::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_is_max() {
        assert_eq!(NO_VERTEX, u32::MAX);
    }
}
