//! Reader/writer for the `.graph` text format of the paper's dataset
//! release (RapidsAtHKUST/SubgraphMatching):
//!
//! ```text
//! t <num_vertices> <num_edges>
//! v <id> <label> <degree>
//! ...
//! e <u> <v>
//! ...
//! ```
//!
//! The degree column is redundant (recomputable) and is validated but not
//! trusted. Comment lines beginning with `#` or `%` are skipped.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::types::{Label, VertexId};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors produced while parsing the `.graph` format.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed line with its 1-based line number.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
    /// Header counts disagree with the body.
    CountMismatch {
        /// Count declared in the `t` header.
        expected: usize,
        /// Count actually present in the body.
        found: usize,
        /// `"vertex"` or `"edge"`.
        what: &'static str,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line, msg } => write!(f, "line {line}: {msg}"),
            ParseError::CountMismatch {
                expected,
                found,
                what,
            } => write!(
                f,
                "{what} count mismatch: header says {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Parse a graph from any reader in the `.graph` text format.
///
/// ```
/// let text = "t 2 1\nv 0 5 1\nv 1 6 1\ne 0 1\n";
/// let g = sm_graph::io::read_graph(text.as_bytes()).unwrap();
/// assert_eq!(g.num_vertices(), 2);
/// assert!(g.has_edge(0, 1));
/// ```
pub fn read_graph<R: Read>(reader: R) -> Result<Graph, ParseError> {
    let reader = BufReader::new(reader);
    let mut builder: Option<GraphBuilder> = None;
    let mut expected_vertices = 0usize;
    let mut expected_edges = 0usize;
    let mut seen_vertices = 0usize;
    let mut seen_edges = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let tag = parts.next().unwrap();
        let malformed = |msg: &str| ParseError::Malformed {
            line: lineno,
            msg: msg.to_string(),
        };
        match tag {
            "t" => {
                let n: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed("bad vertex count in header"))?;
                let m: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed("bad edge count in header"))?;
                expected_vertices = n;
                expected_edges = m;
                builder = Some(GraphBuilder::with_capacity(n, m));
            }
            "v" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| malformed("'v' line before 't' header"))?;
                let id: VertexId = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed("bad vertex id"))?;
                let label: Label = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed("bad vertex label"))?;
                // optional degree column ignored
                if id as usize != seen_vertices {
                    return Err(malformed(&format!(
                        "vertex ids must be dense and ascending; expected {seen_vertices}, got {id}"
                    )));
                }
                b.add_vertex(label);
                seen_vertices += 1;
            }
            "e" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| malformed("'e' line before 't' header"))?;
                let u: VertexId = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed("bad edge endpoint"))?;
                let v: VertexId = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed("bad edge endpoint"))?;
                b.add_edge(u, v);
                seen_edges += 1;
            }
            other => {
                return Err(malformed(&format!("unknown line tag '{other}'")));
            }
        }
    }
    if seen_vertices != expected_vertices {
        return Err(ParseError::CountMismatch {
            expected: expected_vertices,
            found: seen_vertices,
            what: "vertex",
        });
    }
    if seen_edges != expected_edges {
        return Err(ParseError::CountMismatch {
            expected: expected_edges,
            found: seen_edges,
            what: "edge",
        });
    }
    Ok(builder.unwrap_or_default().build())
}

/// Serialize `g` in the `.graph` text format.
pub fn write_graph<W: Write>(g: &Graph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "t {} {}", g.num_vertices(), g.num_edges())?;
    for v in g.vertices() {
        writeln!(w, "v {} {} {}", v, g.label(v), g.degree(v))?;
    }
    for (u, v) in g.edges() {
        writeln!(w, "e {u} {v}")?;
    }
    Ok(())
}

/// Load a graph from a file path.
pub fn load_graph<P: AsRef<Path>>(path: P) -> Result<Graph, ParseError> {
    let file = std::fs::File::open(path)?;
    read_graph(file)
}

/// Save a graph to a file path.
pub fn save_graph<P: AsRef<Path>>(g: &Graph, path: P) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    write_graph(g, &mut w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn round_trip() {
        let g = graph_from_edges(&[0, 1, 2, 3], &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(&buf[..]).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(g2.label(v), g.label(v));
            assert_eq!(g2.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn comments_and_blank_lines() {
        let text = "# comment\n\nt 2 1\nv 0 5 1\nv 1 6 1\n% another\ne 0 1\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.label(0), 5);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn header_mismatch_detected() {
        let text = "t 2 2\nv 0 0 0\nv 1 0 0\ne 0 1\n";
        match read_graph(text.as_bytes()) {
            Err(ParseError::CountMismatch { what: "edge", .. }) => {}
            other => panic!("expected edge count mismatch, got {other:?}"),
        }
    }

    #[test]
    fn non_dense_vertex_ids_rejected() {
        let text = "t 2 0\nv 0 0 0\nv 5 0 0\n";
        assert!(matches!(
            read_graph(text.as_bytes()),
            Err(ParseError::Malformed { .. })
        ));
    }

    #[test]
    fn unknown_tag_rejected() {
        let text = "t 1 0\nv 0 0 0\nx 1 2\n";
        assert!(matches!(
            read_graph(text.as_bytes()),
            Err(ParseError::Malformed { .. })
        ));
    }

    #[test]
    fn file_round_trip() {
        let g = graph_from_edges(&[1, 1], &[(0, 1)]);
        let dir = std::env::temp_dir().join("sm_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.graph");
        save_graph(&g, &path).unwrap();
        let g2 = load_graph(&path).unwrap();
        assert_eq!(g2.num_edges(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_graph("".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }
}
