//! BFS trees and traversal orders.
//!
//! CFL, CECI and DP-iso all hang their auxiliary structures off a BFS tree
//! `q_t` of the query rooted at a filter-specific start vertex; the BFS
//! visit order is the `δ` of the paper. This module provides both, plus
//! the tree/non-tree edge classification the filters rely on.

use crate::graph::Graph;
use crate::types::{VertexId, NO_VERTEX};
use std::collections::VecDeque;

/// A BFS spanning tree of a connected graph, rooted at `root`.
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// Root vertex.
    pub root: VertexId,
    /// BFS visit order `δ` (root first). Contains every vertex reachable
    /// from the root.
    pub order: Vec<VertexId>,
    /// Parent of each vertex in the tree (`NO_VERTEX` for the root and for
    /// unreachable vertices).
    pub parent: Vec<VertexId>,
    /// Depth of each vertex (root = 0; `u32::MAX` for unreachable).
    pub depth: Vec<u32>,
    /// Children lists, in BFS discovery order.
    pub children: Vec<Vec<VertexId>>,
    /// Position of each vertex within `order` (`usize::MAX` if unreachable).
    pub rank: Vec<usize>,
}

impl BfsTree {
    /// Run BFS from `root`. Neighbors are visited in ascending id order so
    /// the tree is deterministic.
    pub fn build(g: &Graph, root: VertexId) -> Self {
        let n = g.num_vertices();
        let mut parent = vec![NO_VERTEX; n];
        let mut depth = vec![u32::MAX; n];
        let mut rank = vec![usize::MAX; n];
        let mut children = vec![Vec::new(); n];
        let mut order = Vec::with_capacity(n);
        let mut queue = VecDeque::new();
        depth[root as usize] = 0;
        rank[root as usize] = 0;
        order.push(root);
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if depth[w as usize] == u32::MAX {
                    depth[w as usize] = depth[v as usize] + 1;
                    parent[w as usize] = v;
                    rank[w as usize] = order.len();
                    children[v as usize].push(w);
                    order.push(w);
                    queue.push_back(w);
                }
            }
        }
        BfsTree {
            root,
            order,
            parent,
            depth,
            children,
            rank,
        }
    }

    /// Whether edge `(u, v)` of the underlying graph is a tree edge.
    pub fn is_tree_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.parent[u as usize] == v || self.parent[v as usize] == u
    }

    /// Non-tree edges of the underlying graph (paper notation `E(q_t)`-bar),
    /// each reported once as `(earlier-in-δ, later-in-δ)`.
    pub fn non_tree_edges(&self, g: &Graph) -> Vec<(VertexId, VertexId)> {
        let mut out = Vec::new();
        for (u, v) in g.edges() {
            if !self.is_tree_edge(u, v) {
                if self.rank[u as usize] <= self.rank[v as usize] {
                    out.push((u, v));
                } else {
                    out.push((v, u));
                }
            }
        }
        out
    }

    /// All root-to-leaf paths of the tree (a leaf is a vertex with no
    /// children). Used by CFL's path-based ordering.
    pub fn root_to_leaf_paths(&self) -> Vec<Vec<VertexId>> {
        let mut paths = Vec::new();
        let mut stack = vec![(self.root, vec![self.root])];
        while let Some((v, path)) = stack.pop() {
            let kids = &self.children[v as usize];
            if kids.is_empty() {
                paths.push(path);
            } else {
                for &c in kids {
                    let mut p = path.clone();
                    p.push(c);
                    stack.push((c, p));
                }
            }
        }
        paths.sort();
        paths
    }

    /// Maximum depth of the tree.
    pub fn max_depth(&self) -> u32 {
        self.order
            .iter()
            .map(|&v| self.depth[v as usize])
            .max()
            .unwrap_or(0)
    }

    /// Vertices at the given depth, in BFS order.
    pub fn vertices_at_depth(&self, d: u32) -> Vec<VertexId> {
        self.order
            .iter()
            .copied()
            .filter(|&v| self.depth[v as usize] == d)
            .collect()
    }
}

/// All vertices within `depth` hops of any source: a multi-source
/// bounded BFS, returned as a sorted vertex list. `depth = 0` returns
/// the (deduplicated) sources themselves.
///
/// This is the halo-membership primitive of the sharded serving tier:
/// a shard that owns `sources` replicates exactly `khop_ball(g,
/// sources, k) \ sources` as ghost vertices.
pub fn khop_ball(g: &Graph, sources: &[VertexId], depth: u32) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s as usize] == u32::MAX {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    let mut members: Vec<VertexId> = queue.iter().copied().collect();
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        if d == depth {
            continue;
        }
        for &w in g.neighbors(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = d + 1;
                members.push(w);
                queue.push_back(w);
            }
        }
    }
    members.sort_unstable();
    members
}

/// Eccentricity of `v`: the maximum BFS depth over every vertex
/// reachable from `v`. `None` when some vertex of `g` is unreachable
/// from `v` (the eccentricity would be infinite).
pub fn eccentricity(g: &Graph, v: VertexId) -> Option<u32> {
    let t = BfsTree::build(g, v);
    if t.order.len() < g.num_vertices() {
        return None;
    }
    Some(t.max_depth())
}

/// Diameter of `g`: the maximum eccentricity over all vertices. `None`
/// for the empty graph and for disconnected graphs. Runs one BFS per
/// vertex — meant for query-sized graphs, where it sizes the halo depth
/// a sharded partition needs to answer the query locally.
pub fn diameter(g: &Graph) -> Option<u32> {
    if g.num_vertices() == 0 {
        return None;
    }
    (0..g.num_vertices() as VertexId)
        .map(|v| eccentricity(g, v))
        .try_fold(0, |acc, e| e.map(|e| acc.max(e)))
}

/// Connected components of `g` as vertex lists.
pub fn connected_components(g: &Graph) -> Vec<Vec<VertexId>> {
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut comps = Vec::new();
    for s in 0..n as VertexId {
        if seen[s as usize] {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![s];
        seen[s as usize] = true;
        while let Some(v) = stack.pop() {
            comp.push(v);
            for &w in g.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    /// The running-example query of the paper's Figure 1(a):
    /// u0(A) - u1(B), u0 - u2(C), u1 - u2, u1 - u3(D), u2 - u3.
    fn paper_query() -> Graph {
        graph_from_edges(&[0, 1, 2, 3], &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn bfs_tree_shape() {
        let q = paper_query();
        let t = BfsTree::build(&q, 0);
        assert_eq!(t.order, vec![0, 1, 2, 3]);
        assert_eq!(t.parent[1], 0);
        assert_eq!(t.parent[2], 0);
        assert_eq!(t.parent[3], 1);
        assert_eq!(t.depth, vec![0, 1, 1, 2]);
        assert_eq!(t.rank, vec![0, 1, 2, 3]);
        assert_eq!(t.children[0], vec![1, 2]);
        assert_eq!(t.max_depth(), 2);
        assert_eq!(t.vertices_at_depth(1), vec![1, 2]);
    }

    #[test]
    fn tree_vs_non_tree_edges() {
        let q = paper_query();
        let t = BfsTree::build(&q, 0);
        assert!(t.is_tree_edge(0, 1));
        assert!(t.is_tree_edge(1, 3));
        assert!(!t.is_tree_edge(1, 2));
        let nt = t.non_tree_edges(&q);
        assert_eq!(nt, vec![(1, 2), (2, 3)]);
    }

    #[test]
    fn root_to_leaf_paths() {
        let q = paper_query();
        let t = BfsTree::build(&q, 0);
        let paths = t.root_to_leaf_paths();
        assert_eq!(paths, vec![vec![0, 1, 3], vec![0, 2]]);
    }

    #[test]
    fn components() {
        let g = graph_from_edges(&[0; 5], &[(0, 1), (2, 3)]);
        let comps = connected_components(&g);
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn khop_ball_bounded_expansion() {
        // Path 0-1-2-3-4 plus isolated 5.
        let g = graph_from_edges(&[0; 6], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(khop_ball(&g, &[0], 0), vec![0]);
        assert_eq!(khop_ball(&g, &[0], 2), vec![0, 1, 2]);
        assert_eq!(khop_ball(&g, &[0, 4], 1), vec![0, 1, 3, 4]);
        assert_eq!(khop_ball(&g, &[5], 3), vec![5]);
        // Duplicate sources dedup.
        assert_eq!(khop_ball(&g, &[2, 2], 1), vec![1, 2, 3]);
        assert!(khop_ball(&g, &[], 2).is_empty());
    }

    #[test]
    fn diameter_and_eccentricity() {
        let path = graph_from_edges(&[0; 4], &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(eccentricity(&path, 0), Some(3));
        assert_eq!(eccentricity(&path, 1), Some(2));
        assert_eq!(diameter(&path), Some(3));
        let tri = graph_from_edges(&[0; 3], &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(diameter(&tri), Some(1));
        let disconnected = graph_from_edges(&[0; 3], &[(0, 1)]);
        assert_eq!(eccentricity(&disconnected, 0), None);
        assert_eq!(diameter(&disconnected), None);
        let empty = graph_from_edges(&[], &[]);
        assert_eq!(diameter(&empty), None);
        let single = graph_from_edges(&[0], &[]);
        assert_eq!(diameter(&single), Some(0));
    }

    #[test]
    fn bfs_on_single_vertex() {
        let g = graph_from_edges(&[0], &[]);
        let t = BfsTree::build(&g, 0);
        assert_eq!(t.order, vec![0]);
        assert!(t.root_to_leaf_paths() == vec![vec![0]]);
    }
}
