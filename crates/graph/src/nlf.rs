//! Neighbor-label-frequency (NLF) index.

use crate::graph::Graph;
use crate::types::{Label, VertexId};

/// For every vertex `v`, the multiset of labels of `N(v)` as sorted
/// `(label, count)` pairs, stored in one CSR-like arena.
///
/// This is the structure behind the NLF filter of CFL/CECI/DP-iso: a data
/// vertex `v` can match query vertex `u` only if for every label `l` in
/// `L(N(u))`, `|N(u, l)| <= |N(v, l)|`. Because both sides are sorted by
/// label, the dominance check is a linear merge.
#[derive(Clone, Debug)]
pub struct NlfIndex {
    offsets: Vec<usize>,
    entries: Vec<(Label, u32)>,
}

impl NlfIndex {
    /// Build the index for every vertex of `g`. `O(|E|)` amortized (labels
    /// of a sorted adjacency list are counted with a scratch map).
    pub fn build(g: &Graph) -> Self {
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut entries = Vec::new();
        let mut scratch: Vec<(Label, u32)> = Vec::new();
        for v in 0..n as VertexId {
            scratch.clear();
            for &w in g.neighbors(v) {
                scratch.push((g.label(w), 1));
            }
            scratch.sort_unstable_by_key(|&(l, _)| l);
            // run-length encode
            let mut i = 0;
            while i < scratch.len() {
                let l = scratch[i].0;
                let mut c = 0u32;
                while i < scratch.len() && scratch[i].0 == l {
                    c += 1;
                    i += 1;
                }
                entries.push((l, c));
            }
            offsets.push(entries.len());
        }
        NlfIndex { offsets, entries }
    }

    /// Assemble an index directly from per-vertex rows (each sorted by
    /// label). This is the constructor behind *incremental* index
    /// maintenance in `sm-delta`: untouched rows are copied verbatim from
    /// an existing index and only patched rows are recomputed, instead of
    /// re-scanning every adjacency list as [`NlfIndex::build`] does.
    pub fn from_rows<'a, I>(rows: I) -> Self
    where
        I: IntoIterator<Item = &'a [(Label, u32)]>,
    {
        let mut offsets = vec![0usize];
        let mut entries = Vec::new();
        for row in rows {
            debug_assert!(
                row.windows(2).all(|w| w[0].0 < w[1].0),
                "rows sorted by label"
            );
            entries.extend_from_slice(row);
            offsets.push(entries.len());
        }
        NlfIndex { offsets, entries }
    }

    /// Assemble directly from raw CSR arrays — `offsets` spanning
    /// `entries`, each row strictly label-sorted — without the per-row
    /// copy of [`NlfIndex::from_rows`]. This is the recovery-path
    /// constructor: an on-disk snapshot already stores the index in this
    /// exact shape. Returns `None` if the shape is invalid.
    pub fn from_csr(offsets: Vec<usize>, entries: Vec<(Label, u32)>) -> Option<Self> {
        if offsets.first() != Some(&0) || offsets.last() != Some(&entries.len()) {
            return None;
        }
        for w in offsets.windows(2) {
            if w[0] > w[1] {
                return None;
            }
            if !entries[w[0]..w[1]].windows(2).all(|p| p[0].0 < p[1].0) {
                return None;
            }
        }
        Some(NlfIndex { offsets, entries })
    }

    /// [`NlfIndex::from_csr`] without the release-build validation pass,
    /// for arrays assembled by code that upholds the invariants by
    /// construction (the overlay materializer). Untrusted input must go
    /// through [`NlfIndex::from_csr`]. Debug builds still validate.
    pub fn from_csr_unchecked(offsets: Vec<usize>, entries: Vec<(Label, u32)>) -> Self {
        #[cfg(debug_assertions)]
        {
            NlfIndex::from_csr(offsets, entries).expect("invalid NLF CSR")
        }
        #[cfg(not(debug_assertions))]
        {
            NlfIndex { offsets, entries }
        }
    }

    /// The raw CSR arrays: per-vertex offsets spanning the flat entry
    /// list. The counterpart of [`NlfIndex::from_csr`], used for bulk
    /// copies (snapshot encoding, overlay materialization).
    #[inline]
    pub fn csr(&self) -> (&[usize], &[(Label, u32)]) {
        (&self.offsets, &self.entries)
    }

    /// Sorted `(label, count)` pairs for `v`'s neighborhood.
    #[inline]
    pub fn entry(&self, v: VertexId) -> &[(Label, u32)] {
        let v = v as usize;
        &self.entries[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Count of neighbors of `v` labeled `l`.
    #[inline]
    pub fn count(&self, v: VertexId, l: Label) -> u32 {
        let e = self.entry(v);
        match e.binary_search_by_key(&l, |&(ll, _)| ll) {
            Ok(i) => e[i].1,
            Err(_) => 0,
        }
    }

    /// NLF dominance test: does `v_entry` (data side) dominate `u_entry`
    /// (query side)? Both must be sorted by label.
    ///
    /// Returns true iff for every `(l, c)` in `u_entry` there is `(l, c')`
    /// in `v_entry` with `c' >= c`.
    pub fn dominates(v_entry: &[(Label, u32)], u_entry: &[(Label, u32)]) -> bool {
        let mut i = 0; // over v_entry
        for &(l, c) in u_entry {
            while i < v_entry.len() && v_entry[i].0 < l {
                i += 1;
            }
            if i >= v_entry.len() || v_entry[i].0 != l || v_entry[i].1 < c {
                return false;
            }
        }
        true
    }

    /// Convenience: does data vertex `v` (in this index) NLF-dominate query
    /// vertex `u` (in `q_nlf`)?
    #[inline]
    pub fn check(&self, v: VertexId, q_nlf: &NlfIndex, u: VertexId) -> bool {
        Self::dominates(self.entry(v), q_nlf.entry(u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn entries_are_run_length_encoded() {
        // star: center 0 (label 9) with leaves labeled 1,1,2
        let g = graph_from_edges(&[9, 1, 1, 2], &[(0, 1), (0, 2), (0, 3)]);
        let nlf = g.build_nlf();
        assert_eq!(nlf.entry(0), &[(1, 2), (2, 1)]);
        assert_eq!(nlf.entry(1), &[(9, 1)]);
        assert_eq!(nlf.count(0, 1), 2);
        assert_eq!(nlf.count(0, 9), 0);
    }

    #[test]
    fn dominance() {
        assert!(NlfIndex::dominates(&[(1, 2), (2, 1)], &[(1, 1)]));
        assert!(NlfIndex::dominates(&[(1, 2), (2, 1)], &[(1, 2), (2, 1)]));
        assert!(!NlfIndex::dominates(&[(1, 2)], &[(1, 3)]));
        assert!(!NlfIndex::dominates(&[(1, 2)], &[(2, 1)]));
        assert!(NlfIndex::dominates(&[(1, 2)], &[]));
        assert!(!NlfIndex::dominates(&[], &[(0, 1)]));
    }

    #[test]
    fn cross_graph_check() {
        // query: edge A-B; data: path A-B-A
        let q = graph_from_edges(&[0, 1], &[(0, 1)]);
        let g = graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let qn = q.build_nlf();
        let gn = g.build_nlf();
        // data v0 (label A, nbr B) dominates query u0 (label A, nbr B)
        assert!(gn.check(0, &qn, 0));
        // data v1 has neighbors {A,A}; query u1 needs one A neighbor
        assert!(gn.check(1, &qn, 1));
        // data v0 does not dominate u1 (u1 needs an A-labeled neighbor)
        assert!(!gn.check(0, &qn, 1));
    }

    #[test]
    fn from_rows_round_trips() {
        let g = graph_from_edges(&[9, 1, 1, 2], &[(0, 1), (0, 2), (0, 3)]);
        let nlf = g.build_nlf();
        let rebuilt = NlfIndex::from_rows((0..4).map(|v| nlf.entry(v)));
        for v in 0..4 {
            assert_eq!(rebuilt.entry(v), nlf.entry(v));
        }
    }

    #[test]
    fn isolated_vertex_entry_is_empty() {
        let g = graph_from_edges(&[0, 0], &[]);
        let nlf = g.build_nlf();
        assert!(nlf.entry(0).is_empty());
        assert_eq!(nlf.count(0, 0), 0);
    }
}
