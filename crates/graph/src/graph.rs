//! The CSR graph at the heart of the study.

use crate::label_index::LabelIndex;
use crate::nlf::NlfIndex;
use crate::types::{Label, VertexId};

/// An undirected, vertex-labeled graph in compressed sparse row form.
///
/// Neighbor lists are sorted ascending, so edge existence tests are
/// `O(log d)` binary searches (the cost the paper denotes β) and neighbor
/// lists can feed the merge/galloping set intersections of `sm-intersect`
/// directly.
///
/// The structure is immutable after construction via [`crate::GraphBuilder`];
/// all per-query state lives outside the graph, which is what lets the
/// matching engines share one graph across threads.
#[derive(Clone, Debug)]
pub struct Graph {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
    labels: Vec<Label>,
    label_index: LabelIndex,
    max_degree: usize,
}

impl Graph {
    pub(crate) fn from_parts(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        labels: Vec<Label>,
    ) -> Self {
        debug_assert_eq!(offsets.len(), labels.len() + 1);
        let label_index = LabelIndex::build(&labels);
        let n = labels.len();
        let max_degree = (0..n)
            .map(|v| offsets[v + 1] - offsets[v])
            .max()
            .unwrap_or(0);
        Graph {
            offsets,
            neighbors,
            labels,
            label_index,
            max_degree,
        }
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Number of distinct labels `|Σ|`.
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.label_index.num_labels()
    }

    /// Largest vertex degree in the graph.
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Average degree `2|E| / |V|`.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.neighbors.len() as f64 / self.num_vertices() as f64
        }
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Label of vertex `v`.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v as usize]
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the undirected edge `(u, v)` exists. `O(log min(d(u), d(v)))`.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        // Search the smaller adjacency list: same asymptotics, better
        // constants on skewed degree distributions (power-law graphs).
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// All vertex ids, `0..n`.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterate over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// The label index (label → sorted vertex list, label frequencies).
    #[inline]
    pub fn label_index(&self) -> &LabelIndex {
        &self.label_index
    }

    /// Vertices with label `l`, sorted ascending.
    #[inline]
    pub fn vertices_with_label(&self, l: Label) -> &[VertexId] {
        self.label_index.vertices_with_label(l)
    }

    /// Number of vertices carrying label `l` (the `|{v : L(v) = l}|` term
    /// in QuickSI's and VF2++'s orderings).
    #[inline]
    pub fn label_frequency(&self, l: Label) -> usize {
        self.label_index.frequency(l)
    }

    /// Build the neighbor-label-frequency index used by the NLF filter and
    /// VF2++'s runtime pruning rule. `O(|E|)`.
    pub fn build_nlf(&self) -> NlfIndex {
        NlfIndex::build(self)
    }

    /// Neighbors of `v` whose label is `l`, as a count. `O(d(v))`; callers
    /// on hot paths should use a prebuilt [`NlfIndex`] instead.
    pub fn count_neighbors_with_label(&self, v: VertexId, l: Label) -> usize {
        self.neighbors(v)
            .iter()
            .filter(|&&w| self.label(w) == l)
            .count()
    }

    /// Whether the graph is connected (empty graphs count as connected).
    pub fn is_connected(&self) -> bool {
        let n = self.num_vertices();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0 as VertexId];
        seen[0] = true;
        let mut visited = 1usize;
        while let Some(v) = stack.pop() {
            for &w in self.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    visited += 1;
                    stack.push(w);
                }
            }
        }
        visited == n
    }

    /// Vertex-induced subgraph on `verts` (paper notation `g[V']`).
    ///
    /// Returns the subgraph together with the mapping from new vertex ids
    /// (positions in `verts`) back to the original ids.
    pub fn induced_subgraph(&self, verts: &[VertexId]) -> (Graph, Vec<VertexId>) {
        let mut to_new = std::collections::HashMap::with_capacity(verts.len());
        for (i, &v) in verts.iter().enumerate() {
            to_new.insert(v, i as VertexId);
        }
        let mut b = crate::GraphBuilder::new();
        for &v in verts {
            b.add_vertex(self.label(v));
        }
        for (i, &v) in verts.iter().enumerate() {
            for &w in self.neighbors(v) {
                if let Some(&j) = to_new.get(&w) {
                    if (i as VertexId) < j {
                        b.add_edge(i as VertexId, j);
                    }
                }
            }
        }
        (b.build(), verts.to_vec())
    }

    /// Total number of directed adjacency entries (`2|E|`); exposed for
    /// memory accounting in the experiment harness.
    #[inline]
    pub fn adjacency_len(&self) -> usize {
        self.neighbors.len()
    }

    /// The raw CSR arrays `(offsets, neighbors, labels)` — the
    /// serialization surface of the on-disk snapshot format (`sm-durable`
    /// writes these sections verbatim, little-endian).
    #[inline]
    pub fn csr(&self) -> (&[usize], &[VertexId], &[Label]) {
        (&self.offsets, &self.neighbors, &self.labels)
    }

    /// Rebuild a graph from raw CSR arrays — the snapshot-load path,
    /// which skips the `GraphBuilder` sort entirely. The shape is
    /// validated (monotone offsets covering `neighbors`, per-row sorted
    /// adjacency with in-range endpoints) so a corrupt or truncated
    /// snapshot body cannot produce a graph that violates the CSR
    /// invariants the matching engines rely on.
    pub fn from_csr(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        labels: Vec<Label>,
    ) -> Result<Self, &'static str> {
        let n = labels.len();
        if offsets.len() != n + 1 {
            return Err("offsets length must be labels length + 1");
        }
        if offsets[0] != 0 || offsets[n] != neighbors.len() {
            return Err("offsets must span the neighbor array");
        }
        for v in 0..n {
            if offsets[v] > offsets[v + 1] {
                return Err("offsets must be monotone");
            }
            let row = &neighbors[offsets[v]..offsets[v + 1]];
            if !row.windows(2).all(|w| w[0] < w[1]) {
                return Err("adjacency rows must be strictly ascending");
            }
            if row.last().is_some_and(|&w| w as usize >= n) {
                return Err("neighbor id out of range");
            }
        }
        Ok(Graph::from_parts(offsets, neighbors, labels))
    }

    /// [`Graph::from_csr`] without the release-build validation pass, for
    /// arrays assembled by code that upholds the CSR invariants by
    /// construction (the overlay materializer). Untrusted input — disk,
    /// network — must go through [`Graph::from_csr`] instead. Debug
    /// builds still validate.
    pub fn from_csr_unchecked(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        labels: Vec<Label>,
    ) -> Self {
        #[cfg(debug_assertions)]
        {
            Graph::from_csr(offsets, neighbors, labels).expect("invalid CSR")
        }
        #[cfg(not(debug_assertions))]
        {
            Graph::from_parts(offsets, neighbors, labels)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn path3() -> crate::Graph {
        // 0 - 1 - 2, labels A B A
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_vertex(0);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.build()
    }

    #[test]
    fn basic_accessors() {
        let g = path3();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_labels(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.label(1), 1);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn edge_tests_are_symmetric() {
        let g = path3();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(2, 0));
    }

    #[test]
    fn label_index_contents() {
        let g = path3();
        assert_eq!(g.vertices_with_label(0), &[0, 2]);
        assert_eq!(g.vertices_with_label(1), &[1]);
        assert_eq!(g.label_frequency(0), 2);
        assert_eq!(g.label_frequency(7), 0);
        assert!(g.vertices_with_label(9).is_empty());
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = path3();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn connectivity() {
        let g = path3();
        assert!(g.is_connected());
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(0);
        assert!(!b.build().is_connected());
        assert!(GraphBuilder::new().build().is_connected());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        // triangle 0-1-2 plus pendant 3
        let mut b = GraphBuilder::new();
        for _ in 0..4 {
            b.add_vertex(0);
        }
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.add_edge(2, 3);
        let g = b.build();
        let (sub, map) = g.induced_subgraph(&[0, 1, 2]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(map, vec![0, 1, 2]);
        let (sub2, _) = g.induced_subgraph(&[0, 3]);
        assert_eq!(sub2.num_edges(), 0);
    }

    #[test]
    fn count_neighbors_with_label() {
        let g = path3();
        assert_eq!(g.count_neighbors_with_label(1, 0), 2);
        assert_eq!(g.count_neighbors_with_label(0, 1), 1);
        assert_eq!(g.count_neighbors_with_label(0, 0), 0);
    }
}
