//! Workload generators.
//!
//! * [`rmat`] — the R-MAT recursive-matrix power-law generator used for the
//!   paper's synthetic datasets (Section 4, parameters a=0.45, b=0.22,
//!   c=0.22, d=0.11).
//! * [`random`] — Erdős–Rényi graphs and label assignment strategies
//!   (uniform and skewed, the latter modelling WordNet's ">80 % one label"
//!   distribution).
//! * [`query`] — random-walk extraction of connected query graphs with
//!   dense/sparse density control (the paper's `Q_iD` / `Q_iS` sets).

pub mod query;
pub mod random;
pub mod rmat;

pub use query::{extract_query, generate_query_set, QuerySetSpec};
pub use random::{assign_labels_skewed, assign_labels_uniform, erdos_renyi};
pub use rmat::{rmat_graph, RmatParams};
