//! Erdős–Rényi graphs and label assignment strategies.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::types::Label;
use sm_runtime::rng::Rng64;

/// G(n, m): a uniform random graph with `n` vertices and (approximately,
/// after dedup) `m` edges, labels uniform over `0..num_labels`.
pub fn erdos_renyi(n: usize, m: usize, num_labels: usize, seed: u64) -> Graph {
    assert!(num_labels >= 1);
    let mut rng = Rng64::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..n {
        b.add_vertex(rng.gen_range(0..num_labels as Label));
    }
    if n >= 2 {
        for _ in 0..m {
            let u = rng.gen_range(0..n) as u32;
            let mut v = rng.gen_range(0..n) as u32;
            while v == u {
                v = rng.gen_range(0..n) as u32;
            }
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Replace the labels of `g` with uniform draws from `0..num_labels`
/// (the relabeling the paper applies to unlabeled datasets).
pub fn assign_labels_uniform(g: &Graph, num_labels: usize, seed: u64) -> Graph {
    assert!(num_labels >= 1);
    let mut rng = Rng64::seed_from_u64(seed);
    relabel(g, |_| rng.gen_range(0..num_labels as Label))
}

/// Zipf-distributed label assignment: label `l` is drawn with probability
/// proportional to `1/(l+1)^s`. Real vertex-labeled graphs (protein
/// families, paper venues, site categories) have a few frequent labels and
/// a long tail; uniform assignment makes label filtering unrealistically
/// selective.
pub fn assign_labels_zipf(g: &Graph, num_labels: usize, s: f64, seed: u64) -> Graph {
    assert!(num_labels >= 1);
    let mut rng = Rng64::seed_from_u64(seed);
    // cumulative weights
    let mut cum = Vec::with_capacity(num_labels);
    let mut total = 0.0f64;
    for l in 0..num_labels {
        total += 1.0 / ((l + 1) as f64).powf(s);
        cum.push(total);
    }
    relabel(g, |_| {
        let x = rng.gen_f64() * total;
        cum.partition_point(|&c| c < x) as Label
    })
}

/// Skewed label assignment: a `dominant_share` fraction of vertices get
/// label 0 and the remainder are uniform over the other labels. Models
/// WordNet, where more than 80 % of vertices share one label.
pub fn assign_labels_skewed(g: &Graph, num_labels: usize, dominant_share: f64, seed: u64) -> Graph {
    assert!(num_labels >= 1);
    assert!((0.0..=1.0).contains(&dominant_share));
    let mut rng = Rng64::seed_from_u64(seed);
    relabel(g, |_| {
        if num_labels == 1 || rng.gen_f64() < dominant_share {
            0
        } else {
            rng.gen_range(1..num_labels as Label)
        }
    })
}

fn relabel(g: &Graph, mut f: impl FnMut(u32) -> Label) -> Graph {
    let mut b = GraphBuilder::with_capacity(g.num_vertices(), g.num_edges());
    for v in g.vertices() {
        b.add_vertex(f(v));
    }
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    b.build()
}

/// Keep each edge of `g` independently with probability `share` — the
/// density sweep of the paper's friendster experiment (Figure 18, 40/60/80 %
/// of edges).
pub fn sample_edges(g: &Graph, share: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&share));
    let mut rng = Rng64::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(g.num_vertices(), g.num_edges());
    for v in g.vertices() {
        b.add_vertex(g.label(v));
    }
    for (u, v) in g.edges() {
        if rng.gen_f64() < share {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// A uniformly random permutation of `0..n`, used by the spectrum analysis
/// to sample matching orders.
pub fn random_permutation(n: usize, rng: &mut Rng64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut perm);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_shape() {
        let g = erdos_renyi(100, 300, 4, 5);
        assert_eq!(g.num_vertices(), 100);
        assert!(g.num_edges() <= 300);
        assert!(g.num_edges() > 250); // few collisions at this density
    }

    #[test]
    fn er_deterministic() {
        let a = erdos_renyi(50, 100, 3, 9);
        let b = erdos_renyi(50, 100, 3, 9);
        assert!(a.vertices().all(|v| a.neighbors(v) == b.neighbors(v)));
    }

    #[test]
    fn uniform_relabel_preserves_structure() {
        let g = erdos_renyi(60, 120, 2, 1);
        let g2 = assign_labels_uniform(&g, 8, 2);
        assert_eq!(g2.num_edges(), g.num_edges());
        assert!(g2.vertices().all(|v| g2.label(v) < 8));
        assert!(g2.vertices().all(|v| g2.neighbors(v) == g.neighbors(v)));
    }

    #[test]
    fn skewed_labels_dominant_share() {
        let g = erdos_renyi(2000, 4000, 2, 3);
        let g2 = assign_labels_skewed(&g, 5, 0.85, 4);
        let zero = g2.vertices().filter(|&v| g2.label(v) == 0).count();
        let share = zero as f64 / 2000.0;
        assert!(share > 0.80 && share < 0.90, "share {share}");
    }

    #[test]
    fn edge_sampling_bounds() {
        let g = erdos_renyi(200, 1000, 2, 6);
        let h = sample_edges(&g, 0.5, 7);
        assert_eq!(h.num_vertices(), g.num_vertices());
        let ratio = h.num_edges() as f64 / g.num_edges() as f64;
        assert!(ratio > 0.4 && ratio < 0.6, "ratio {ratio}");
        assert_eq!(sample_edges(&g, 0.0, 1).num_edges(), 0);
        assert_eq!(sample_edges(&g, 1.0, 1).num_edges(), g.num_edges());
    }

    #[test]
    fn permutation_is_permutation() {
        let mut rng = Rng64::seed_from_u64(0);
        let p = random_permutation(10, &mut rng);
        let mut q = p.clone();
        q.sort_unstable();
        assert_eq!(q, (0..10).collect::<Vec<_>>());
    }
}

#[cfg(test)]
mod zipf_tests {
    use super::*;

    #[test]
    fn zipf_labels_are_skewed_and_in_range() {
        let g = erdos_renyi(5000, 10_000, 2, 1);
        let g2 = assign_labels_zipf(&g, 10, 1.0, 2);
        assert!(g2.vertices().all(|v| g2.label(v) < 10));
        let freq0 = g2.vertices().filter(|&v| g2.label(v) == 0).count();
        let freq9 = g2.vertices().filter(|&v| g2.label(v) == 9).count();
        // label 0 should be roughly 10x as frequent as label 9
        assert!(freq0 > freq9 * 4, "freq0={freq0} freq9={freq9}");
        // structure preserved
        assert_eq!(g2.num_edges(), g.num_edges());
    }

    #[test]
    fn zipf_single_label() {
        let g = erdos_renyi(50, 100, 3, 1);
        let g2 = assign_labels_zipf(&g, 1, 1.0, 0);
        assert!(g2.vertices().all(|v| g2.label(v) == 0));
    }
}
