//! R-MAT recursive-matrix graph generator (Chakrabarti, Zhan, Faloutsos;
//! SDM 2004), the synthetic-data generator of the paper's Section 4.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::types::{Label, VertexId};
use sm_runtime::rng::Rng64;

/// R-MAT quadrant probabilities. The paper fixes `a=0.45, b=0.22, c=0.22,
/// d=0.11`.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Probability of the bottom-right quadrant.
    pub d: f64,
}

impl RmatParams {
    /// The parameters used throughout the paper.
    pub const PAPER: RmatParams = RmatParams {
        a: 0.45,
        b: 0.22,
        c: 0.22,
        d: 0.11,
    };

    fn validate(&self) {
        let s = self.a + self.b + self.c + self.d;
        assert!(
            (s - 1.0).abs() < 1e-9,
            "RMAT quadrant probabilities must sum to 1, got {s}"
        );
        assert!(self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0);
    }
}

impl Default for RmatParams {
    fn default() -> Self {
        Self::PAPER
    }
}

/// Generate an undirected power-law graph with `num_vertices` vertices and
/// approximately `avg_degree * num_vertices / 2` distinct edges, labels
/// drawn uniformly from `0..num_labels`.
///
/// ```
/// use sm_graph::gen::rmat::{rmat_graph, RmatParams};
/// let g = rmat_graph(1000, 8.0, 4, RmatParams::PAPER, 42);
/// assert_eq!(g.num_vertices(), 1000);
/// assert!((g.avg_degree() - 8.0).abs() < 1.0);
/// ```
///
/// RMAT naturally produces duplicate edges; we oversample by a small factor
/// and rely on the builder's deduplication, so the realized edge count is
/// close to (but not exactly) the target — the same approach the original
/// generator takes. Fully deterministic for a given `seed`.
pub fn rmat_graph(
    num_vertices: usize,
    avg_degree: f64,
    num_labels: usize,
    params: RmatParams,
    seed: u64,
) -> Graph {
    params.validate();
    assert!(num_labels >= 1, "need at least one label");
    let mut rng = Rng64::seed_from_u64(seed);
    // scale = number of bisection levels (log2 of padded vertex count)
    let scale = (num_vertices.max(2) as f64).log2().ceil() as u32;
    let side = 1usize << scale;
    let target_edges = ((avg_degree * num_vertices as f64) / 2.0).round() as usize;

    let mut b = GraphBuilder::with_capacity(num_vertices, target_edges);
    for _ in 0..num_vertices {
        b.add_vertex(rng.gen_range(0..num_labels as Label));
    }
    // Track distinct edges so the realized edge count hits the target
    // exactly (up to saturation); RMAT's quadrant skew produces many
    // duplicates otherwise.
    let mut seen = std::collections::HashSet::with_capacity(target_edges * 2);
    let mut emitted = 0usize;
    let mut tries = 0usize;
    let max_tries = target_edges.saturating_mul(40).max(1024);
    while emitted < target_edges && tries < max_tries {
        tries += 1;
        let (mut x0, mut x1) = (0usize, side);
        let (mut y0, mut y1) = (0usize, side);
        for _ in 0..scale {
            let r: f64 = rng.gen_f64();
            let (right, down) = if r < params.a {
                (false, false)
            } else if r < params.a + params.b {
                (true, false)
            } else if r < params.a + params.b + params.c {
                (false, true)
            } else {
                (true, true)
            };
            let xm = (x0 + x1) / 2;
            let ym = (y0 + y1) / 2;
            if right {
                x0 = xm;
            } else {
                x1 = xm;
            }
            if down {
                y0 = ym;
            } else {
                y1 = ym;
            }
        }
        let (u, v) = (x0, y0);
        if u < num_vertices && v < num_vertices && u != v {
            let key = if u < v { (u, v) } else { (v, u) };
            if seen.insert(key) {
                b.add_edge(u as VertexId, v as VertexId);
                emitted += 1;
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let g1 = rmat_graph(256, 8.0, 4, RmatParams::PAPER, 42);
        let g2 = rmat_graph(256, 8.0, 4, RmatParams::PAPER, 42);
        assert_eq!(g1.num_edges(), g2.num_edges());
        for v in g1.vertices() {
            assert_eq!(g1.neighbors(v), g2.neighbors(v));
            assert_eq!(g1.label(v), g2.label(v));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = rmat_graph(256, 8.0, 4, RmatParams::PAPER, 1);
        let g2 = rmat_graph(256, 8.0, 4, RmatParams::PAPER, 2);
        // overwhelmingly likely to differ in edge count or adjacency
        let same = g1.num_edges() == g2.num_edges()
            && g1.vertices().all(|v| g1.neighbors(v) == g2.neighbors(v));
        assert!(!same);
    }

    #[test]
    fn degree_near_target() {
        let g = rmat_graph(2000, 10.0, 8, RmatParams::PAPER, 7);
        let d = g.avg_degree();
        assert!(d > 5.0 && d < 12.0, "avg degree {d} too far from target 10");
    }

    #[test]
    fn labels_in_range() {
        let g = rmat_graph(500, 4.0, 6, RmatParams::PAPER, 3);
        assert!(g.vertices().all(|v| g.label(v) < 6));
        assert!(g.num_labels() <= 6);
    }

    #[test]
    fn power_law_skew() {
        // RMAT with the paper's skewed quadrants should produce a max degree
        // far above the average.
        let g = rmat_graph(4096, 8.0, 4, RmatParams::PAPER, 11);
        assert!(g.max_degree() as f64 > 3.0 * g.avg_degree());
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn invalid_params_rejected() {
        let p = RmatParams {
            a: 0.5,
            b: 0.5,
            c: 0.5,
            d: 0.5,
        };
        let _ = rmat_graph(10, 2.0, 2, p, 0);
    }
}
