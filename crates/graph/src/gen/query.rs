//! Random-walk query extraction (Section 4, "Query graphs").
//!
//! The paper builds each query set by random-walking the data graph until
//! the walk has touched the requested number of vertices, taking the
//! vertex-induced subgraph, and keeping it only if its density matches the
//! requested class (dense: `d(q) >= 3`; sparse: `d(q) < 3`).

use crate::graph::Graph;
use crate::types::VertexId;
use sm_runtime::rng::Rng64;

/// Density class of a query set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Density {
    /// `d(q) >= 3` — the paper's `Q_iD` sets.
    Dense,
    /// `d(q) < 3` — the paper's `Q_iS` sets.
    Sparse,
    /// No density constraint (used for the `Q_4` sets).
    Any,
}

impl Density {
    /// Whether average degree `d` satisfies this class.
    pub fn admits(self, avg_degree: f64) -> bool {
        match self {
            Density::Dense => avg_degree >= 3.0,
            Density::Sparse => avg_degree < 3.0,
            Density::Any => true,
        }
    }
}

/// Specification of one query set (paper notation `Q_iD` / `Q_iS`).
#[derive(Clone, Copy, Debug)]
pub struct QuerySetSpec {
    /// Query vertex count `|V(q)|`.
    pub num_vertices: usize,
    /// Density class.
    pub density: Density,
    /// Number of queries in the set (paper: 200).
    pub count: usize,
}

impl QuerySetSpec {
    /// Paper-style name: `Q4`, `Q8D`, `Q8S`, ...
    pub fn name(&self) -> String {
        match self.density {
            Density::Dense => format!("Q{}D", self.num_vertices),
            Density::Sparse => format!("Q{}S", self.num_vertices),
            Density::Any => format!("Q{}", self.num_vertices),
        }
    }
}

/// Extract one connected query of `size` vertices from `g` via random
/// walk and induced subgraph. Returns `None` if the walk could not reach
/// `size` distinct vertices (e.g. the start lies in a tiny component) or
/// the density class is not met; callers retry with fresh randomness.
///
/// For [`Density::Dense`] the walk is degree-biased (tournament selection
/// of the start vertex and of each step): induced subgraphs with
/// `d(q) ≥ 3` live in the dense core of power-law graphs, and an unbiased
/// walk on a sparse graph essentially never lands there. Real social/web
/// graphs additionally have local clustering that makes unbiased
/// extraction viable for the paper; the bias substitutes for that.
pub fn extract_query(g: &Graph, size: usize, density: Density, rng: &mut Rng64) -> Option<Graph> {
    let n = g.num_vertices();
    if n < size || size == 0 {
        return None;
    }
    let mut verts = if density == Density::Dense {
        grow_dense(g, size, rng)?
    } else {
        random_walk(g, size, rng)?
    };
    verts.sort_unstable();
    let (q, _) = g.induced_subgraph(&verts);
    if !q.is_connected() {
        return None;
    }
    if !density.admits(q.avg_degree()) {
        return None;
    }
    Some(q)
}

/// Plain random walk with periodic restarts — the paper's extraction.
fn random_walk(g: &Graph, size: usize, rng: &mut Rng64) -> Option<Vec<VertexId>> {
    let n = g.num_vertices();
    let start = {
        let mut found = None;
        for _ in 0..64 {
            let v = rng.gen_range(0..n) as VertexId;
            if g.degree(v) > 0 || size == 1 {
                found = Some(v);
                break;
            }
        }
        found?
    };
    let mut in_set = std::collections::HashSet::with_capacity(size);
    let mut verts = Vec::with_capacity(size);
    in_set.insert(start);
    verts.push(start);
    let mut cur = start;
    let budget = size * 64;
    let mut steps = 0;
    while verts.len() < size && steps < budget {
        steps += 1;
        let nbrs = g.neighbors(cur);
        if nbrs.is_empty() {
            return None;
        }
        let next = nbrs[rng.gen_range(0..nbrs.len())];
        if in_set.insert(next) {
            verts.push(next);
        }
        cur = next;
        // occasional restart from a random touched vertex keeps the walk
        // from being trapped by a high-degree sink
        if steps % 16 == 0 {
            cur = verts[rng.gen_range(0..verts.len())];
        }
    }
    (verts.len() == size).then_some(verts)
}

/// Greedy densest-frontier growth for dense queries: repeatedly add the
/// frontier vertex with the most edges into the current set, breaking ties
/// uniformly at random.
///
/// Induced subgraphs with `d(q) ≥ 3` live in the dense core of a graph; an
/// unbiased walk on a sparse power-law stand-in essentially never samples
/// one (real social/lexical graphs additionally have local clustering that
/// makes walk extraction viable for the paper — this growth rule
/// substitutes for that).
fn grow_dense(g: &Graph, size: usize, rng: &mut Rng64) -> Option<Vec<VertexId>> {
    let n = g.num_vertices();
    // Degree-tournament start: dense neighborhoods sit around hubs.
    let start = {
        let mut best: Option<VertexId> = None;
        for _ in 0..64 {
            let v = rng.gen_range(0..n) as VertexId;
            if g.degree(v) == 0 && size > 1 {
                continue;
            }
            if best.is_none_or(|b| g.degree(v) > g.degree(b)) {
                best = Some(v);
            }
        }
        best?
    };
    let mut in_set = std::collections::HashSet::with_capacity(size);
    let mut verts = Vec::with_capacity(size);
    in_set.insert(start);
    verts.push(start);
    // frontier: vertex -> number of edges into the set
    let mut frontier: std::collections::HashMap<VertexId, u32> = std::collections::HashMap::new();
    for &w in g.neighbors(start) {
        frontier.insert(w, 1);
    }
    while verts.len() < size {
        let best_score = frontier.values().copied().max()?;
        // uniform choice among the argmax frontier vertices; sorted so the
        // pick depends only on the seed, not HashMap iteration order
        let mut ties: Vec<VertexId> = frontier
            .iter()
            .filter(|&(_, &s)| s == best_score)
            .map(|(&v, _)| v)
            .collect();
        ties.sort_unstable();
        let next = ties[rng.gen_range(0..ties.len())];
        frontier.remove(&next);
        in_set.insert(next);
        verts.push(next);
        for &w in g.neighbors(next) {
            if !in_set.contains(&w) {
                *frontier.entry(w).or_insert(0) += 1;
            }
        }
    }
    Some(verts)
}

/// Generate a full query set per `spec`, deterministic for a given `seed`.
///
/// Retries walks until `spec.count` queries are collected or an attempt
/// budget is exhausted (sparse sets on dense graphs can be genuinely hard
/// to hit); the returned vector may then be shorter than requested.
pub fn generate_query_set(g: &Graph, spec: QuerySetSpec, seed: u64) -> Vec<Graph> {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut out = Vec::with_capacity(spec.count);
    let max_attempts = spec.count.max(1) * 400;
    let mut attempts = 0;
    while out.len() < spec.count && attempts < max_attempts {
        attempts += 1;
        if let Some(q) = extract_query(g, spec.num_vertices, spec.density, &mut rng) {
            out.push(q);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::rmat::{rmat_graph, RmatParams};

    fn data_graph() -> Graph {
        rmat_graph(1000, 12.0, 4, RmatParams::PAPER, 99)
    }

    #[test]
    fn extracted_queries_are_connected_induced() {
        let g = data_graph();
        let mut rng = Rng64::seed_from_u64(1);
        let mut found = 0;
        for _ in 0..50 {
            if let Some(q) = extract_query(&g, 8, Density::Any, &mut rng) {
                assert_eq!(q.num_vertices(), 8);
                assert!(q.is_connected());
                found += 1;
            }
        }
        assert!(found > 10, "only {found} extractions succeeded");
    }

    #[test]
    fn density_classes_respected() {
        let g = data_graph();
        for q in generate_query_set(
            &g,
            QuerySetSpec {
                num_vertices: 8,
                density: Density::Dense,
                count: 10,
            },
            7,
        ) {
            assert!(q.avg_degree() >= 3.0);
        }
        for q in generate_query_set(
            &g,
            QuerySetSpec {
                num_vertices: 8,
                density: Density::Sparse,
                count: 10,
            },
            8,
        ) {
            assert!(q.avg_degree() < 3.0);
        }
    }

    #[test]
    fn set_generation_deterministic() {
        // Dense exercises grow_dense's frontier tie-break, which must not
        // depend on HashMap iteration order; compare full structure, not
        // just sizes. (Two same-seed calls use *different* hasher states,
        // so order leakage shows up even within one process.)
        let g = data_graph();
        for density in [Density::Any, Density::Dense] {
            let spec = QuerySetSpec {
                num_vertices: 6,
                density,
                count: 5,
            };
            let a = generate_query_set(&g, spec, 3);
            let b = generate_query_set(&g, spec, 3);
            assert_eq!(a.len(), b.len());
            for (qa, qb) in a.iter().zip(&b) {
                assert_eq!(qa.num_edges(), qb.num_edges());
                for v in 0..qa.num_vertices() as u32 {
                    assert_eq!(qa.label(v), qb.label(v));
                    assert_eq!(qa.neighbors(v), qb.neighbors(v));
                }
            }
        }
    }

    #[test]
    fn impossible_size_returns_none() {
        let g = data_graph();
        let mut rng = Rng64::seed_from_u64(0);
        assert!(extract_query(&g, 5000, Density::Any, &mut rng).is_none());
        assert!(extract_query(&g, 0, Density::Any, &mut rng).is_none());
    }

    #[test]
    fn spec_names() {
        let d = QuerySetSpec {
            num_vertices: 8,
            density: Density::Dense,
            count: 1,
        };
        assert_eq!(d.name(), "Q8D");
        let s = QuerySetSpec {
            num_vertices: 16,
            density: Density::Sparse,
            count: 1,
        };
        assert_eq!(s.name(), "Q16S");
        let a = QuerySetSpec {
            num_vertices: 4,
            density: Density::Any,
            count: 1,
        };
        assert_eq!(a.name(), "Q4");
    }

    #[test]
    fn labels_preserved_from_data_graph() {
        let g = data_graph();
        let mut rng = Rng64::seed_from_u64(2);
        if let Some(q) = extract_query(&g, 6, Density::Any, &mut rng) {
            assert!(q.vertices().all(|v| (q.label(v) as usize) < 4));
        }
    }
}
