//! Graph substrate for the in-memory subgraph matching study.
//!
//! This crate provides the data structures and workload generators that the
//! matching framework ([`sm-match`]) is built on:
//!
//! * [`Graph`] — an undirected, vertex-labeled graph stored in compressed
//!   sparse row (CSR) form with sorted adjacency lists, exactly the layout
//!   the paper assumes for its cost analysis (edge tests are binary
//!   searches over sorted neighbor arrays).
//! * [`GraphBuilder`] — incremental construction from edge lists with
//!   deduplication and self-loop removal.
//! * [`LabelIndex`] / [`NlfIndex`] — per-label vertex lists and per-vertex
//!   neighbor-label-frequency tables used by the LDF and NLF filters.
//! * [`io`] — reader/writer for the `.graph` text format used by the
//!   paper's public dataset release (`t N M` / `v id label degree` /
//!   `e u v`).
//! * [`gen`] — RMAT and Erdős–Rényi generators plus the random-walk query
//!   extractor used to build the paper's dense/sparse query sets.
//! * [`traversal`] — BFS trees and traversal orders shared by the CFL,
//!   CECI and DP-iso filters.
//! * [`core_decomposition`] — the 2-core (degeneracy) computation used by
//!   CFL's ordering.
//! * [`canon`] — canonical labelings and permutation-invariant
//!   fingerprints of query graphs, the keying scheme of the service
//!   layer's plan cache.
//!
//! # Example
//!
//! ```
//! use sm_graph::{Graph, GraphBuilder};
//!
//! let mut b = GraphBuilder::new();
//! b.add_vertex(0); // label 0
//! b.add_vertex(1);
//! b.add_vertex(0);
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! let g: Graph = b.build();
//! assert_eq!(g.num_vertices(), 3);
//! assert_eq!(g.num_edges(), 2);
//! assert!(g.has_edge(0, 1));
//! assert!(!g.has_edge(0, 2));
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod canon;
pub mod core_decomposition;
pub mod gen;
pub mod graph;
pub mod io;
pub mod io_edgelist;
pub mod label_index;
pub mod nlf;
pub mod stats;
pub mod traversal;
pub mod types;

pub use builder::GraphBuilder;
pub use graph::Graph;
pub use label_index::LabelIndex;
pub use nlf::NlfIndex;
pub use stats::GraphStats;
pub use types::{Label, VertexId};
