//! Loader for plain edge-list files (the SNAP / KONECT style most public
//! graph datasets ship in): one `u v` pair per line, `#` or `%` comments,
//! arbitrary (possibly sparse) vertex ids.
//!
//! Vertex ids are compacted to `0..n` in first-appearance order. The
//! format carries no labels; callers label the result with
//! [`crate::gen::random::assign_labels_uniform`] /
//! [`crate::gen::random::assign_labels_zipf`], exactly how the paper
//! labels its unlabeled datasets.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::io::ParseError;
use crate::types::VertexId;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// Parse an edge list from any reader. All vertices get label 0.
///
/// ```
/// let text = "# snap-style comment\n101 102\n102 103\n";
/// let g = sm_graph::io_edgelist::read_edge_list(text.as_bytes()).unwrap();
/// assert_eq!(g.num_vertices(), 3); // ids compacted
/// assert_eq!(g.num_edges(), 2);
/// ```
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, ParseError> {
    let reader = BufReader::new(reader);
    let mut ids: HashMap<u64, VertexId> = HashMap::new();
    let mut builder = GraphBuilder::new();
    let mut intern = |raw: u64, b: &mut GraphBuilder| -> VertexId {
        *ids.entry(raw).or_insert_with(|| b.add_vertex(0))
    };
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let parse = |s: Option<&str>| -> Result<u64, ParseError> {
            s.and_then(|x| x.parse().ok()).ok_or(ParseError::Malformed {
                line: lineno,
                msg: "expected two integer vertex ids".to_string(),
            })
        };
        let u = parse(parts.next())?;
        let v = parse(parts.next())?;
        // extra columns (weights, timestamps) are ignored
        let ui = intern(u, &mut builder);
        let vi = intern(v, &mut builder);
        builder.add_edge(ui, vi);
    }
    Ok(builder.build())
}

/// Load an edge-list file from disk.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<Graph, ParseError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_parse() {
        let text = "# a comment\n1 2\n2 3\n1 3\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.is_connected());
    }

    #[test]
    fn sparse_ids_are_compacted() {
        let text = "1000000 42\n42 7\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn duplicates_self_loops_and_extra_columns() {
        let text = "1 2 0.5\n2 1 0.7\n1 1\n% weighted konect style\n2 3 1.0 1234567\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2); // 1-2 deduped, self loop dropped
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "1 2\nnot numbers\n";
        match read_edge_list(text.as_bytes()) {
            Err(ParseError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected malformed, got {other:?}"),
        }
    }

    #[test]
    fn empty_input() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn labels_default_to_zero_for_relabeling() {
        let text = "1 2\n2 3\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert!(g.vertices().all(|v| g.label(v) == 0));
        let labeled = crate::gen::random::assign_labels_zipf(&g, 4, 1.0, 1);
        assert_eq!(labeled.num_edges(), g.num_edges());
    }
}
