//! Summary statistics, matching the columns of the paper's Table 3.

use crate::graph::Graph;

/// `|V|`, `|E|`, `|Σ|` and degree statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Number of distinct labels.
    pub num_labels: usize,
    /// Average degree `2|E|/|V|`.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
}

impl GraphStats {
    /// Compute the statistics of `g`.
    pub fn of(g: &Graph) -> Self {
        GraphStats {
            num_vertices: g.num_vertices(),
            num_edges: g.num_edges(),
            num_labels: g.num_labels(),
            avg_degree: g.avg_degree(),
            max_degree: g.max_degree(),
        }
    }

    /// Density classification used for query sets: dense iff avg degree ≥ 3.
    pub fn is_dense(&self) -> bool {
        self.avg_degree >= 3.0
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} |Σ|={} d={:.1} dmax={}",
            self.num_vertices, self.num_edges, self.num_labels, self.avg_degree, self.max_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn stats_of_triangle() {
        let g = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
        let s = GraphStats::of(&g);
        assert_eq!(s.num_vertices, 3);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.num_labels, 3);
        assert!((s.avg_degree - 2.0).abs() < 1e-12);
        assert_eq!(s.max_degree, 2);
        assert!(!s.is_dense());
    }

    #[test]
    fn dense_classification() {
        // K4: avg degree 3
        let g = graph_from_edges(&[0; 4], &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert!(GraphStats::of(&g).is_dense());
    }

    #[test]
    fn display_format() {
        let g = graph_from_edges(&[0, 0], &[(0, 1)]);
        let s = format!("{}", GraphStats::of(&g));
        assert!(s.contains("|V|=2"));
        assert!(s.contains("|E|=1"));
    }
}
