//! Label → vertex index and label-pair edge statistics.

use crate::graph::Graph;
use crate::types::{Label, VertexId};

/// Maps each label to the sorted list of vertices carrying it.
///
/// Backing storage is a CSR over labels so lookups are two array reads; the
/// LDF filter iterates `vertices_with_label(L(u))` instead of scanning all
/// of `V(G)`.
#[derive(Clone, Debug)]
pub struct LabelIndex {
    offsets: Vec<usize>,
    vertices: Vec<VertexId>,
    num_labels: usize,
}

impl LabelIndex {
    /// Build the index from a per-vertex label array.
    pub fn build(labels: &[Label]) -> Self {
        let max_label = labels.iter().copied().max().map_or(0, |l| l as usize + 1);
        let mut counts = vec![0usize; max_label];
        for &l in labels {
            counts[l as usize] += 1;
        }
        let num_labels = counts.iter().filter(|&&c| c > 0).count();
        let mut offsets = vec![0usize; max_label + 1];
        for l in 0..max_label {
            offsets[l + 1] = offsets[l] + counts[l];
        }
        let mut vertices = vec![0 as VertexId; labels.len()];
        let mut cursor = offsets[..max_label].to_vec();
        for (v, &l) in labels.iter().enumerate() {
            vertices[cursor[l as usize]] = v as VertexId;
            cursor[l as usize] += 1;
        }
        // Vertices enter in increasing id order, so each bucket is sorted.
        LabelIndex {
            offsets,
            vertices,
            num_labels,
        }
    }

    /// Number of distinct labels that occur at least once.
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Sorted vertices carrying label `l` (empty slice if unused).
    #[inline]
    pub fn vertices_with_label(&self, l: Label) -> &[VertexId] {
        let l = l as usize;
        if l + 1 >= self.offsets.len() {
            &[]
        } else {
            &self.vertices[self.offsets[l]..self.offsets[l + 1]]
        }
    }

    /// Number of vertices carrying label `l`.
    #[inline]
    pub fn frequency(&self, l: Label) -> usize {
        self.vertices_with_label(l).len()
    }
}

/// Counts, for every unordered label pair `(la, lb)`, the number of edges in
/// `G` whose endpoints carry those labels — the edge weights `w(e)` in
/// QuickSI's infrequent-edge-first ordering.
#[derive(Clone, Debug)]
pub struct LabelPairEdgeCounts {
    counts: std::collections::HashMap<(Label, Label), u64>,
}

impl LabelPairEdgeCounts {
    /// Scan all edges of `g` once. `O(|E|)`.
    pub fn build(g: &Graph) -> Self {
        let mut counts = std::collections::HashMap::new();
        // Dense counting for realistic label universes: one array
        // increment per edge instead of a hash probe. The build sits on
        // every service (re)start, including snapshot recovery.
        let lmax = (0..g.num_vertices() as VertexId)
            .map(|v| g.label(v) as usize + 1)
            .max()
            .unwrap_or(0);
        if lmax > 0 && lmax <= 512 {
            let mut dense = vec![0u64; lmax * lmax];
            for u in 0..g.num_vertices() as VertexId {
                let lu = g.label(u) as usize;
                for &v in g.neighbors(u) {
                    if v <= u {
                        continue;
                    }
                    let lv = g.label(v) as usize;
                    let (a, b) = if lu <= lv { (lu, lv) } else { (lv, lu) };
                    dense[a * lmax + b] += 1;
                }
            }
            for a in 0..lmax {
                for b in a..lmax {
                    let c = dense[a * lmax + b];
                    if c > 0 {
                        counts.insert((a as Label, b as Label), c);
                    }
                }
            }
        } else {
            for (u, v) in g.edges() {
                let key = Self::key(g.label(u), g.label(v));
                *counts.entry(key).or_insert(0u64) += 1;
            }
        }
        LabelPairEdgeCounts { counts }
    }

    #[inline]
    fn key(a: Label, b: Label) -> (Label, Label) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Number of edges in the indexed graph between labels `a` and `b`.
    #[inline]
    pub fn count(&self, a: Label, b: Label) -> u64 {
        self.counts.get(&Self::key(a, b)).copied().unwrap_or(0)
    }

    /// Record one more edge between labels `a` and `b` — incremental
    /// maintenance under graph updates, so installs patch the previous
    /// counts instead of rescanning every edge.
    #[inline]
    pub fn insert_pair(&mut self, a: Label, b: Label) {
        *self.counts.entry(Self::key(a, b)).or_insert(0) += 1;
    }

    /// Every tracked pair with its count, keys normalized (`a <= b`) and
    /// ascending — a deterministic order for serialization.
    pub fn sorted_pairs(&self) -> Vec<((Label, Label), u64)> {
        let mut out: Vec<_> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// Rebuild from serialized pairs. Returns `None` if any pair is
    /// denormalized (`a > b`) or has a zero count — shapes
    /// [`LabelPairEdgeCounts::build`] never produces.
    pub fn from_pairs(pairs: impl IntoIterator<Item = ((Label, Label), u64)>) -> Option<Self> {
        let mut counts = std::collections::HashMap::new();
        for ((a, b), c) in pairs {
            if a > b || c == 0 || counts.insert((a, b), c).is_some() {
                return None;
            }
        }
        Some(LabelPairEdgeCounts { counts })
    }

    /// Record one fewer edge between labels `a` and `b`. The pair must be
    /// tracked; removing the last edge drops the entry so the map stays
    /// equal to a fresh [`LabelPairEdgeCounts::build`].
    #[inline]
    pub fn remove_pair(&mut self, a: Label, b: Label) {
        let k = Self::key(a, b);
        match self.counts.get_mut(&k) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.counts.remove(&k);
            }
            None => debug_assert!(false, "removing an untracked label pair"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn index_buckets() {
        let idx = LabelIndex::build(&[2, 0, 2, 1, 2]);
        assert_eq!(idx.num_labels(), 3);
        assert_eq!(idx.vertices_with_label(2), &[0, 2, 4]);
        assert_eq!(idx.vertices_with_label(0), &[1]);
        assert_eq!(idx.frequency(1), 1);
        assert_eq!(idx.frequency(5), 0);
        assert!(idx.vertices_with_label(100).is_empty());
    }

    #[test]
    fn empty_labels() {
        let idx = LabelIndex::build(&[]);
        assert_eq!(idx.num_labels(), 0);
        assert!(idx.vertices_with_label(0).is_empty());
    }

    #[test]
    fn unused_label_gap() {
        // label 1 never occurs
        let idx = LabelIndex::build(&[0, 2]);
        assert_eq!(idx.num_labels(), 2);
        assert!(idx.vertices_with_label(1).is_empty());
    }

    #[test]
    fn pair_adjustments_match_a_fresh_build() {
        let g = graph_from_edges(&[0, 1, 0, 1], &[(0, 1), (2, 3), (1, 3)]);
        let mut c = LabelPairEdgeCounts::build(&g);
        // Mirror deleting (2,3) and inserting (0,2): A-B loses one, A-A
        // gains one — exactly what a rebuild of the updated graph shows.
        c.remove_pair(0, 1);
        c.insert_pair(0, 0);
        let g2 = graph_from_edges(&[0, 1, 0, 1], &[(0, 1), (0, 2), (1, 3)]);
        let fresh = LabelPairEdgeCounts::build(&g2);
        for (a, b) in [(0, 0), (0, 1), (1, 1)] {
            assert_eq!(c.count(a, b), fresh.count(a, b));
        }
        c.remove_pair(1, 1);
        assert_eq!(c.count(1, 1), 0);
    }

    #[test]
    fn label_pair_counts() {
        // A-B, A-B, B-B
        let g = graph_from_edges(&[0, 1, 0, 1], &[(0, 1), (2, 3), (1, 3)]);
        let c = LabelPairEdgeCounts::build(&g);
        assert_eq!(c.count(0, 1), 2);
        assert_eq!(c.count(1, 0), 2);
        assert_eq!(c.count(1, 1), 1);
        assert_eq!(c.count(0, 0), 0);
        assert_eq!(c.count(4, 4), 0);
    }
}
