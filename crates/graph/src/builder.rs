//! Incremental graph construction.

use crate::graph::Graph;
use crate::types::{Label, VertexId};

/// Builds a [`Graph`] from vertices and an edge list.
///
/// Self-loops and duplicate edges are dropped during [`GraphBuilder::build`],
/// so generators can emit edges without pre-deduplicating (RMAT in
/// particular produces collisions by design).
#[derive(Default, Debug, Clone)]
pub struct GraphBuilder {
    labels: Vec<Label>,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a builder pre-sized for `n` vertices and `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            labels: Vec::with_capacity(n),
            edges: Vec::with_capacity(m),
        }
    }

    /// Add a vertex with the given label; returns its id.
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        let id = self.labels.len() as VertexId;
        self.labels.push(label);
        id
    }

    /// Add `n` vertices all carrying `label`.
    pub fn add_vertices(&mut self, n: usize, label: Label) {
        self.labels.extend(std::iter::repeat_n(label, n));
    }

    /// Add an undirected edge. Endpoints must already exist by build time.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.edges.push((u, v));
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of edge insertions so far (before dedup).
    pub fn num_edge_insertions(&self) -> usize {
        self.edges.len()
    }

    /// Finalize into an immutable CSR [`Graph`].
    ///
    /// # Panics
    ///
    /// Panics if any edge endpoint is out of range.
    pub fn build(self) -> Graph {
        let n = self.labels.len();
        for &(u, v) in &self.edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u}, {v}) references a vertex >= {n}"
            );
        }
        // Counting sort into CSR: count degrees (both directions), prefix
        // sum, scatter, then per-vertex sort + dedup.
        let mut deg = vec![0usize; n];
        for &(u, v) in &self.edges {
            if u != v {
                deg[u as usize] += 1;
                deg[v as usize] += 1;
            }
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + deg[v];
        }
        let mut neighbors = vec![0 as VertexId; offsets[n]];
        let mut cursor = offsets[..n].to_vec();
        for &(u, v) in &self.edges {
            if u != v {
                neighbors[cursor[u as usize]] = v;
                cursor[u as usize] += 1;
                neighbors[cursor[v as usize]] = u;
                cursor[v as usize] += 1;
            }
        }
        // Sort each adjacency list and drop duplicate edges, compacting the
        // arrays in place.
        let mut write = 0usize;
        let mut new_offsets = vec![0usize; n + 1];
        for v in 0..n {
            let (lo, hi) = (offsets[v], offsets[v + 1]);
            neighbors[lo..hi].sort_unstable();
            let mut prev: Option<VertexId> = None;
            let start = write;
            for i in lo..hi {
                let w = neighbors[i];
                if prev != Some(w) {
                    neighbors[write] = w;
                    write += 1;
                    prev = Some(w);
                }
            }
            new_offsets[v] = start;
        }
        new_offsets[n] = write;
        neighbors.truncate(write);
        // new_offsets currently stores starts; it is already a valid offset
        // array because segments are written contiguously.
        Graph::from_parts(new_offsets, neighbors, self.labels)
    }
}

/// Convenience constructor: build a graph from labels and an edge list.
pub fn graph_from_edges(labels: &[Label], edges: &[(VertexId, VertexId)]) -> Graph {
    let mut b = GraphBuilder::with_capacity(labels.len(), edges.len());
    for &l in labels {
        b.add_vertex(l);
    }
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loops() {
        let g = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 0), (0, 1), (1, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_labels(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let mut b = GraphBuilder::new();
        b.add_vertices(5, 3);
        let g = b.build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.label(4), 3);
    }

    #[test]
    #[should_panic(expected = "references a vertex")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_edge(0, 3);
        let _ = b.build();
    }

    #[test]
    fn adjacency_sorted() {
        let g = graph_from_edges(&[0; 5], &[(4, 0), (4, 2), (4, 1), (4, 3)]);
        assert_eq!(g.neighbors(4), &[0, 1, 2, 3]);
    }
}
