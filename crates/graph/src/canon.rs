//! Canonical forms for query graphs: a permutation-invariant labeling,
//! encoding and fingerprint.
//!
//! A plan cache must map *structurally identical* queries onto one key:
//! the same triangle-with-a-tail submitted with permuted vertex ids
//! should hit the plan compiled for its first appearance. This module
//! computes, for a labeled graph, a **canonical labeling** — a
//! renumbering of the vertices determined only by the graph's structure
//! and labels — plus the **canonical code** (the exact edge/label
//! encoding under that labeling) and a 64-bit **fingerprint** hash of the
//! code.
//!
//! The construction is the classic individualization-refinement scheme:
//!
//! 1. **Refinement** — iterated Weisfeiler-Leman color refinement seeded
//!    with `(label, degree)`: a vertex's color is refined by the sorted
//!    multiset of its neighbors' colors until the partition stabilizes.
//!    Color ids are assigned by sorting the refinement keys, so they
//!    depend only on structure, never on input vertex order.
//! 2. **Individualization** — when refinement leaves a non-singleton
//!    color class (regular substructures), the search individualizes each
//!    vertex of the first such class in turn, re-refines, and recurses,
//!    keeping the lexicographically smallest code over all branches.
//!
//! For the study's query sizes (≤ 32 vertices, labeled, sparse) the
//! refinement partition is discrete or nearly so and the search is tiny.
//! A node budget guards the pathological cases (large unlabeled regular
//! graphs): if the search exceeds it, the identity labeling is used and
//! [`CanonicalForm::exact`] is `false` — callers lose permutation
//! invariance (cache hits), never correctness, because cache consumers
//! compare full codes, not just hashes.

use crate::graph::Graph;
use crate::types::VertexId;
use sm_runtime::rng::splitmix64;

/// Search-node budget for individualization-refinement. Labeled query
/// graphs resolve in a handful of nodes; this bound only trips on large
/// unlabeled regular graphs.
const IR_NODE_BUDGET: usize = 20_000;

/// The canonical form of a labeled graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanonicalForm {
    /// 64-bit fingerprint of [`CanonicalForm::code`] — the cache-key
    /// hash. Equal codes always produce equal hashes; hash collisions
    /// between different codes are possible and must be resolved by
    /// comparing codes.
    pub hash: u64,
    /// The canonical encoding: `[n, m, labels by canonical position…,
    /// edges as (min_pos << 32 | max_pos), sorted…]`. Two graphs are
    /// isomorphic (as labeled graphs) iff their exact codes are equal.
    pub code: Vec<u64>,
    /// `labeling[v]` = canonical position of input vertex `v` (a
    /// permutation of `0..n`). Composing two forms' labelings maps one
    /// isomorphic graph's vertex ids onto the other's.
    pub labeling: Vec<VertexId>,
    /// Whether the labeling came from a completed canonical search.
    /// `false` means the budget was exceeded and the identity labeling
    /// was used — the code is still a faithful encoding, just not
    /// canonical.
    pub exact: bool,
}

impl CanonicalForm {
    /// The vertex map `self → other` implied by the two canonical
    /// labelings: `map[v] = u` such that position(`v` in `self`) ==
    /// position(`u` in `other`). Equal codes guarantee the two labelings
    /// land on the very same encoding, so the composition is a
    /// label-preserving isomorphism even when the search was budgeted
    /// ([`exact`](CanonicalForm::exact) false — both labelings are then
    /// the identity over identical graphs). Returns `None` when the codes
    /// differ (the forms describe different graphs).
    pub fn map_onto(&self, other: &CanonicalForm) -> Option<Vec<VertexId>> {
        if self.code != other.code {
            return None;
        }
        let n = self.labeling.len();
        let mut inv_other = vec![0 as VertexId; n];
        for (u, &pos) in other.labeling.iter().enumerate() {
            inv_other[pos as usize] = u as VertexId;
        }
        Some(
            self.labeling
                .iter()
                .map(|&pos| inv_other[pos as usize])
                .collect(),
        )
    }

    /// Extend the canonical code with a semantics fingerprint: one extra
    /// word appended *after* the edge list (the `[n, m, labels…, edges…]`
    /// prefix keeps its layout, so readers that index labels at
    /// `code[2..2+n]` are unaffected) and the hash recomputed over the
    /// extended code. Two forms extended with different fingerprints never
    /// compare code-equal, which is what keeps plan caches from sharing a
    /// plan across match-semantics modes while permuted twins within one
    /// mode still share (`map_onto` works unchanged — the labelings are
    /// untouched).
    pub fn with_semantics(mut self, fp: u64) -> CanonicalForm {
        self.code.push(fp);
        self.hash = hash_code(&self.code);
        self
    }
}

/// Compute the canonical form of `g`. Deterministic; invariant under any
/// permutation of the vertex ids as long as the search completes (always,
/// for the study's query shapes — see [`CanonicalForm::exact`]).
pub fn canonical_form(g: &Graph) -> CanonicalForm {
    let n = g.num_vertices();
    if n == 0 {
        return CanonicalForm {
            hash: hash_code(&[0, 0]),
            code: vec![0, 0],
            labeling: Vec::new(),
            exact: true,
        };
    }
    // Seed colors: (label, degree), compressed to dense ranks.
    let mut colors: Vec<u64> = (0..n)
        .map(|v| {
            let v = v as VertexId;
            ((g.label(v) as u64) << 32) | g.degree(v) as u64
        })
        .collect();
    compress(&mut colors);
    refine(g, &mut colors);

    let mut budget = IR_NODE_BUDGET;
    let mut best: Option<(Vec<u64>, Vec<VertexId>)> = None;
    search(g, &colors, &mut budget, &mut best);
    // A best found under an exhausted budget may not be the global
    // minimum over all branches — report it as inexact so callers don't
    // rely on permutation invariance.
    let exact = budget > 0;
    match best {
        Some((code, labeling)) => CanonicalForm {
            hash: hash_code(&code),
            code,
            labeling,
            exact,
        },
        None => {
            // Budget exhausted with no completed branch: fall back to the
            // identity labeling. Correct (it is a faithful encoding of
            // this graph), just not permutation-invariant.
            let labeling: Vec<VertexId> = (0..n as VertexId).collect();
            let code = encode(g, &labeling);
            CanonicalForm {
                hash: hash_code(&code),
                code,
                labeling,
                exact: false,
            }
        }
    }
}

/// The canonical fingerprint of `g` — shorthand for
/// [`canonical_form`]`(g).hash`.
pub fn fingerprint(g: &Graph) -> u64 {
    canonical_form(g).hash
}

/// Replace arbitrary color keys with dense ranks `0..k` assigned by
/// sorted key order (structure-determined, input-order-free).
fn compress(colors: &mut [u64]) -> usize {
    let mut sorted: Vec<u64> = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    for c in colors.iter_mut() {
        *c = sorted.binary_search(c).expect("own key") as u64;
    }
    sorted.len()
}

/// One-step WL refinement iterated to a fixpoint: a vertex's new color
/// hashes its old color with the sorted multiset of neighbor colors.
fn refine(g: &Graph, colors: &mut Vec<u64>) {
    let n = g.num_vertices();
    let mut classes = colors
        .iter()
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    let mut nbuf: Vec<u64> = Vec::new();
    loop {
        let mut next: Vec<u64> = Vec::with_capacity(n);
        for v in 0..n {
            nbuf.clear();
            nbuf.extend(
                g.neighbors(v as VertexId)
                    .iter()
                    .map(|&u| colors[u as usize]),
            );
            nbuf.sort_unstable();
            let mut h = colors[v] ^ 0x9E37_79B9_7F4A_7C15;
            for &c in &nbuf {
                let mut s = h ^ c.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                h = splitmix64(&mut s);
            }
            next.push(h);
        }
        let k = compress(&mut next);
        *colors = next;
        if k == classes || k == n {
            return;
        }
        classes = k;
    }
}

/// Individualization-refinement over the stable coloring: recurse until
/// the partition is discrete, keeping the lexicographically smallest
/// code. `budget` caps total search nodes.
fn search(
    g: &Graph,
    colors: &[u64],
    budget: &mut usize,
    best: &mut Option<(Vec<u64>, Vec<VertexId>)>,
) {
    if *budget == 0 {
        return;
    }
    *budget -= 1;
    let n = g.num_vertices();
    // Find the first non-singleton color class (by color value).
    let mut count = vec![0usize; n];
    for &c in colors {
        count[c as usize] += 1;
    }
    let target = (0..n).find(|&c| count[c] > 1);
    let Some(target) = target else {
        // Discrete: colors are a permutation; the color IS the canonical
        // position.
        let labeling: Vec<VertexId> = colors.iter().map(|&c| c as VertexId).collect();
        let code = encode(g, &labeling);
        let better = match best {
            None => true,
            Some((b, _)) => code < *b,
        };
        if better {
            *best = Some((code, labeling));
        }
        return;
    };
    let members: Vec<usize> = (0..n).filter(|&v| colors[v] == target as u64).collect();
    for v in members {
        // Individualize v: a fresh color sorting immediately before its
        // class (2c for v, 2c+1 for everyone else preserves relative
        // order of all other classes).
        let mut child: Vec<u64> = colors.iter().map(|&c| 2 * c + 1).collect();
        child[v] = 2 * target as u64;
        compress(&mut child);
        refine(g, &mut child);
        search(g, &child, budget, best);
        if *budget == 0 {
            return;
        }
    }
}

/// Encode `g` under a complete labeling (`labeling[v]` = position).
fn encode(g: &Graph, labeling: &[VertexId]) -> Vec<u64> {
    let n = g.num_vertices();
    let mut code = Vec::with_capacity(2 + n + g.num_edges());
    code.push(n as u64);
    code.push(g.num_edges() as u64);
    let mut inv = vec![0 as VertexId; n];
    for (v, &pos) in labeling.iter().enumerate() {
        inv[pos as usize] = v as VertexId;
    }
    for &v in inv.iter().take(n) {
        code.push(g.label(v) as u64);
    }
    let mut edges: Vec<u64> = g
        .edges()
        .map(|(u, v)| {
            let (a, b) = (labeling[u as usize], labeling[v as usize]);
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            ((lo as u64) << 32) | hi as u64
        })
        .collect();
    edges.sort_unstable();
    code.extend(edges);
    code
}

/// Hash a code down to the 64-bit fingerprint (splitmix64-folded).
fn hash_code(code: &[u64]) -> u64 {
    let mut h = 0x517C_C1B7_2722_0A95_u64 ^ (code.len() as u64);
    for &w in code {
        let mut s = h ^ w.wrapping_mul(0x94D0_49BB_1331_11EB);
        h = splitmix64(&mut s);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::types::Label;
    use sm_runtime::Rng64;

    /// Apply the vertex permutation `perm` (old id -> new id) to `g`.
    fn permuted(g: &Graph, perm: &[VertexId]) -> Graph {
        let n = g.num_vertices();
        let mut labels = vec![0 as Label; n];
        for v in 0..n {
            labels[perm[v] as usize] = g.label(v as VertexId);
        }
        let edges: Vec<(VertexId, VertexId)> = g
            .edges()
            .map(|(u, v)| (perm[u as usize], perm[v as usize]))
            .collect();
        graph_from_edges(&labels, &edges)
    }

    fn random_perm(n: usize, seed: u64) -> Vec<VertexId> {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut p: Vec<VertexId> = (0..n as VertexId).collect();
        // Fisher-Yates
        for i in (1..n).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            p.swap(i, j);
        }
        p
    }

    #[test]
    fn invariant_under_permutation_labeled() {
        let g = graph_from_edges(
            &[0, 1, 2, 3, 1],
            &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4)],
        );
        let base = canonical_form(&g);
        assert!(base.exact);
        for seed in 0..20 {
            let p = random_perm(g.num_vertices(), seed);
            let h = permuted(&g, &p);
            let f = canonical_form(&h);
            assert_eq!(f.code, base.code, "seed {seed}");
            assert_eq!(f.hash, base.hash);
        }
    }

    #[test]
    fn invariant_on_vertex_transitive_graphs() {
        // C6: one WL color class; requires individualization.
        let c6 = graph_from_edges(
            &[0, 0, 0, 0, 0, 0],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        );
        let base = canonical_form(&c6);
        assert!(base.exact);
        for seed in 0..20 {
            let p = random_perm(6, 1000 + seed);
            let f = canonical_form(&permuted(&c6, &p));
            assert_eq!(f.code, base.code, "seed {seed}");
        }
    }

    #[test]
    fn distinguishes_non_isomorphic_graphs() {
        // Path P4 vs star K1,3: same size, same label multiset.
        let path = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]);
        let star = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]);
        assert_ne!(canonical_form(&path).code, canonical_form(&star).code);
        // Same structure, different labels.
        let a = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let b = graph_from_edges(&[0, 1, 1], &[(0, 1), (1, 2)]);
        assert_ne!(canonical_form(&a).code, canonical_form(&b).code);
        // Label position matters: center-labeled star vs leaf-labeled.
        let c = graph_from_edges(&[1, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]);
        let d = graph_from_edges(&[0, 1, 0, 0], &[(0, 1), (0, 2), (0, 3)]);
        assert_ne!(canonical_form(&c).code, canonical_form(&d).code);
    }

    #[test]
    fn map_onto_is_an_isomorphism() {
        let g = graph_from_edges(&[0, 1, 1, 2], &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let p = random_perm(4, 7);
        let h = permuted(&g, &p);
        let fg = canonical_form(&g);
        let fh = canonical_form(&h);
        let map = fg.map_onto(&fh).expect("isomorphic");
        // map must be a label-preserving edge bijection g -> h
        let mut seen = vec![false; 4];
        for v in 0..4u32 {
            assert_eq!(g.label(v), h.label(map[v as usize]));
            assert!(!seen[map[v as usize] as usize]);
            seen[map[v as usize] as usize] = true;
        }
        for (u, v) in g.edges() {
            assert!(h.has_edge(map[u as usize], map[v as usize]));
        }
        // non-isomorphic: no map
        let other = graph_from_edges(&[0, 1, 1, 2], &[(0, 1), (1, 2), (2, 3)]);
        assert!(fg.map_onto(&canonical_form(&other)).is_none());
    }

    #[test]
    fn fingerprint_matches_form_hash() {
        let g = graph_from_edges(&[0, 1], &[(0, 1)]);
        assert_eq!(fingerprint(&g), canonical_form(&g).hash);
        // empty graph has a stable form
        let empty = graph_from_edges(&[], &[]);
        let f = canonical_form(&empty);
        assert!(f.exact);
        assert_eq!(f.labeling.len(), 0);
    }

    #[test]
    fn labeling_is_a_permutation() {
        let g = graph_from_edges(&[0, 0, 1, 1, 0], &[(0, 2), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let f = canonical_form(&g);
        let mut seen = vec![false; 5];
        for &pos in &f.labeling {
            assert!(!seen[pos as usize]);
            seen[pos as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // code round-trips the graph size
        assert_eq!(f.code[0], 5);
        assert_eq!(f.code[1], g.num_edges() as u64);
    }
}
