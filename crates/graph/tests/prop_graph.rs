//! Structural properties of the CSR graph and its I/O on arbitrary edge
//! lists, on the `sm_runtime::check` randomized harness.

use sm_graph::builder::graph_from_edges;
use sm_graph::io::{read_graph, write_graph};
use sm_runtime::check::Check;
use sm_runtime::rng::Rng64;
use sm_runtime::{ensure, ensure_eq};

/// Arbitrary (labels, edge list) input: up to ~40 vertices, labels in
/// `0..5`, up to `3n` random (possibly duplicate / self-loop) edges.
fn arb_graph(rng: &mut Rng64, size: u32) -> (Vec<u32>, Vec<(u32, u32)>) {
    let n = 2 + (size as usize * 38 / 100).min(38);
    let labels = (0..n).map(|_| rng.gen_range(0u32..5)).collect();
    let num_edges = rng.gen_range(0usize..n * 3);
    let edges = (0..num_edges)
        .map(|_| (rng.gen_range(0u32..n as u32), rng.gen_range(0u32..n as u32)))
        .collect();
    (labels, edges)
}

#[test]
fn csr_invariants() {
    Check::new("csr_invariants")
        .cases(48)
        .run(arb_graph, |(labels, edges)| {
            let g = graph_from_edges(labels, edges);
            // degree sum = 2|E|
            let deg_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
            ensure_eq!(deg_sum, 2 * g.num_edges());
            // adjacency sorted, no self loops, no duplicates
            for v in g.vertices() {
                let n = g.neighbors(v);
                ensure!(
                    n.windows(2).all(|w| w[0] < w[1]),
                    "unsorted adjacency at v{v}"
                );
                ensure!(!n.contains(&v), "self loop at v{v}");
                // symmetry
                for &w in n {
                    ensure!(g.neighbors(w).contains(&v), "asymmetric edge {v}-{w}");
                    ensure!(
                        g.has_edge(v, w) && g.has_edge(w, v),
                        "has_edge disagrees on {v}-{w}"
                    );
                }
            }
            // edges() iterates each undirected edge exactly once
            let listed: Vec<_> = g.edges().collect();
            ensure_eq!(listed.len(), g.num_edges());
            ensure!(
                listed.iter().all(|&(u, v)| u < v),
                "edges() emitted unordered pair"
            );
            // label index covers every vertex exactly once
            let mut covered = 0;
            for l in 0..6u32 {
                let vs = g.vertices_with_label(l);
                ensure!(
                    vs.windows(2).all(|w| w[0] < w[1]),
                    "label index unsorted for {l}"
                );
                ensure!(
                    vs.iter().all(|&v| g.label(v) == l),
                    "label index wrong for {l}"
                );
                covered += vs.len();
            }
            ensure_eq!(covered, g.num_vertices());
            Ok(())
        });
}

#[test]
fn io_round_trip() {
    Check::new("io_round_trip")
        .cases(48)
        .run(arb_graph, |(labels, edges)| {
            let g = graph_from_edges(labels, edges);
            let mut buf = Vec::new();
            write_graph(&g, &mut buf).unwrap();
            let g2 = read_graph(&buf[..]).unwrap();
            ensure_eq!(g2.num_vertices(), g.num_vertices());
            ensure_eq!(g2.num_edges(), g.num_edges());
            for v in g.vertices() {
                ensure_eq!(g2.label(v), g.label(v));
                ensure_eq!(g2.neighbors(v), g.neighbors(v));
            }
            Ok(())
        });
}

#[test]
fn core_numbers_are_consistent() {
    use sm_graph::core_decomposition::core_numbers;
    Check::new("core_numbers_are_consistent")
        .cases(48)
        .run(arb_graph, |(labels, edges)| {
            let g = graph_from_edges(labels, edges);
            let core = core_numbers(&g);
            // core number bounded by degree
            for v in g.vertices() {
                ensure!(
                    core[v as usize] as usize <= g.degree(v),
                    "core number above degree at v{v}"
                );
            }
            // every vertex in the k-core has >= k neighbors inside the k-core
            let maxc = core.iter().copied().max().unwrap_or(0);
            for k in 1..=maxc {
                for v in g.vertices() {
                    if core[v as usize] >= k {
                        let inside = g
                            .neighbors(v)
                            .iter()
                            .filter(|&&w| core[w as usize] >= k)
                            .count();
                        ensure!(
                            inside >= k as usize,
                            "v{v} in {k}-core has only {inside} in-core neighbors"
                        );
                    }
                }
            }
            Ok(())
        });
}

#[test]
fn bfs_tree_covers_component() {
    use sm_graph::traversal::BfsTree;
    Check::new("bfs_tree_covers_component")
        .cases(48)
        .run(arb_graph, |(labels, edges)| {
            let g = graph_from_edges(labels, edges);
            let t = BfsTree::build(&g, 0);
            // order contains unique vertices, root first
            ensure_eq!(t.order[0], 0);
            let set: std::collections::HashSet<_> = t.order.iter().collect();
            ensure_eq!(set.len(), t.order.len());
            // parent depth relation
            for &v in &t.order {
                let p = t.parent[v as usize];
                if p != sm_graph::types::NO_VERTEX {
                    ensure_eq!(t.depth[v as usize], t.depth[p as usize] + 1);
                    ensure!(g.has_edge(p, v), "tree edge {p}-{v} not in graph");
                }
            }
            Ok(())
        });
}
