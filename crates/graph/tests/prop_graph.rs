//! Structural properties of the CSR graph and its I/O on arbitrary edge
//! lists.

use proptest::prelude::*;
use sm_graph::builder::graph_from_edges;
use sm_graph::io::{read_graph, write_graph};

fn arb_graph() -> impl Strategy<Value = (Vec<u32>, Vec<(u32, u32)>)> {
    (2usize..40).prop_flat_map(|n| {
        let labels = prop::collection::vec(0u32..5, n..=n);
        let edges = prop::collection::vec(
            (0u32..n as u32, 0u32..n as u32),
            0..(n * 3),
        );
        (labels, edges)
    })
}

proptest! {
    #[test]
    fn csr_invariants((labels, edges) in arb_graph()) {
        let g = graph_from_edges(&labels, &edges);
        // degree sum = 2|E|
        let deg_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(deg_sum, 2 * g.num_edges());
        // adjacency sorted, no self loops, no duplicates
        for v in g.vertices() {
            let n = g.neighbors(v);
            prop_assert!(n.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!n.contains(&v));
            // symmetry
            for &w in n {
                prop_assert!(g.neighbors(w).contains(&v));
                prop_assert!(g.has_edge(v, w));
                prop_assert!(g.has_edge(w, v));
            }
        }
        // edges() iterates each undirected edge exactly once
        let listed: Vec<_> = g.edges().collect();
        prop_assert_eq!(listed.len(), g.num_edges());
        prop_assert!(listed.iter().all(|&(u, v)| u < v));
        // label index covers every vertex exactly once
        let mut covered = 0;
        for l in 0..6u32 {
            let vs = g.vertices_with_label(l);
            prop_assert!(vs.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(vs.iter().all(|&v| g.label(v) == l));
            covered += vs.len();
        }
        prop_assert_eq!(covered, g.num_vertices());
    }

    #[test]
    fn io_round_trip((labels, edges) in arb_graph()) {
        let g = graph_from_edges(&labels, &edges);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(&buf[..]).unwrap();
        prop_assert_eq!(g2.num_vertices(), g.num_vertices());
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        for v in g.vertices() {
            prop_assert_eq!(g2.label(v), g.label(v));
            prop_assert_eq!(g2.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn core_numbers_are_consistent((labels, edges) in arb_graph()) {
        use sm_graph::core_decomposition::core_numbers;
        let g = graph_from_edges(&labels, &edges);
        let core = core_numbers(&g);
        // core number bounded by degree
        for v in g.vertices() {
            prop_assert!(core[v as usize] as usize <= g.degree(v));
        }
        // every vertex in the k-core has >= k neighbors inside the k-core
        let maxc = core.iter().copied().max().unwrap_or(0);
        for k in 1..=maxc {
            for v in g.vertices() {
                if core[v as usize] >= k {
                    let inside = g
                        .neighbors(v)
                        .iter()
                        .filter(|&&w| core[w as usize] >= k)
                        .count();
                    prop_assert!(
                        inside >= k as usize,
                        "v{} in {}-core has only {} in-core neighbors",
                        v, k, inside
                    );
                }
            }
        }
    }

    #[test]
    fn bfs_tree_covers_component((labels, edges) in arb_graph()) {
        use sm_graph::traversal::BfsTree;
        let g = graph_from_edges(&labels, &edges);
        let t = BfsTree::build(&g, 0);
        // order contains unique vertices, root first
        prop_assert_eq!(t.order[0], 0);
        let set: std::collections::HashSet<_> = t.order.iter().collect();
        prop_assert_eq!(set.len(), t.order.len());
        // parent depth relation
        for &v in &t.order {
            let p = t.parent[v as usize];
            if p != sm_graph::types::NO_VERTEX {
                prop_assert_eq!(t.depth[v as usize], t.depth[p as usize] + 1);
                prop_assert!(g.has_edge(p, v));
            }
        }
    }
}
