//! Canonicalization under automorphism-rich queries: uniform-label
//! cycles, cliques and stars have huge automorphism groups (up to `n!`
//! for the clique), which is exactly where a buggy
//! individualization-refinement implementation produces
//! permutation-dependent codes. Every shape is checked under many seeded
//! random vertex permutations: identical code + hash, a completed
//! (`exact`) search, and a `map_onto` composition that is a genuine
//! label-preserving isomorphism.

use sm_graph::builder::graph_from_edges;
use sm_graph::canon::canonical_form;
use sm_graph::{Graph, Label, VertexId};
use sm_runtime::Rng64;

/// Fisher–Yates permutation of `0..n`.
fn random_perm(n: usize, rng: &mut Rng64) -> Vec<VertexId> {
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    for i in (1..n).rev() {
        let j = rng.next_u64_below(i as u64 + 1) as usize;
        perm.swap(i, j);
    }
    perm
}

/// Relabel vertices: vertex `v` of `g` becomes `perm[v]`.
fn permuted(g: &Graph, perm: &[VertexId]) -> Graph {
    let n = g.num_vertices();
    let mut labels = vec![0 as Label; n];
    for v in 0..n as VertexId {
        labels[perm[v as usize] as usize] = g.label(v);
    }
    let mut edges = Vec::new();
    for v in 0..n as VertexId {
        for &w in g.neighbors(v) {
            if v < w {
                edges.push((perm[v as usize], perm[w as usize]));
            }
        }
    }
    graph_from_edges(&labels, &edges)
}

/// Assert canonical-form invariance of `g` under `rounds` random
/// permutations, including that the composed vertex map is a
/// label-preserving isomorphism.
fn assert_canon_invariant(g: &Graph, rounds: usize, seed: u64) {
    let base = canonical_form(g);
    assert!(base.exact, "search must complete on study-sized queries");
    let mut rng = Rng64::seed_from_u64(seed);
    for round in 0..rounds {
        let perm = random_perm(g.num_vertices(), &mut rng);
        let h = permuted(g, &perm);
        let form = canonical_form(&h);
        assert_eq!(form.code, base.code, "code differs (round {round})");
        assert_eq!(form.hash, base.hash, "hash differs (round {round})");
        assert!(form.exact, "permuted search must complete too");
        // The composed map g -> h must be a label-preserving isomorphism.
        let map = base.map_onto(&form).expect("equal codes compose");
        for v in 0..g.num_vertices() as VertexId {
            let mv = map[v as usize];
            assert_eq!(g.label(v), h.label(mv), "label broken at v{v}");
            for &w in g.neighbors(v) {
                assert!(
                    h.neighbors(mv).contains(&map[w as usize]),
                    "edge ({v},{w}) lost under map (round {round})"
                );
            }
        }
    }
}

fn cycle(n: usize, label: Label) -> Graph {
    let labels = vec![label; n];
    let edges: Vec<(VertexId, VertexId)> = (0..n)
        .map(|i| (i as VertexId, ((i + 1) % n) as VertexId))
        .collect();
    graph_from_edges(&labels, &edges)
}

fn clique(n: usize, label: Label) -> Graph {
    let labels = vec![label; n];
    let mut edges = Vec::new();
    for i in 0..n as VertexId {
        for j in (i + 1)..n as VertexId {
            edges.push((i, j));
        }
    }
    graph_from_edges(&labels, &edges)
}

fn star(leaves: usize, hub_label: Label, leaf_label: Label) -> Graph {
    let mut labels = vec![hub_label];
    labels.extend(std::iter::repeat(leaf_label).take(leaves));
    let edges: Vec<(VertexId, VertexId)> = (1..=leaves as VertexId).map(|l| (0, l)).collect();
    graph_from_edges(&labels, &edges)
}

#[test]
fn uniform_cycles_are_permutation_invariant() {
    for n in 3..=9 {
        assert_canon_invariant(&cycle(n, 0), 12, 0xC0FFEE ^ n as u64);
    }
}

#[test]
fn uniform_cliques_are_permutation_invariant() {
    // K3..K7: automorphism group n! — every vertex is interchangeable.
    for n in 3..=7 {
        assert_canon_invariant(&clique(n, 3), 12, 0xBEEF ^ n as u64);
    }
}

#[test]
fn stars_are_permutation_invariant() {
    // Uniform labels (hub only distinguished by degree) and hub-vs-leaf
    // labeled variants. 7 identical leaves (7! candidate orderings) stays
    // inside the IR node budget; 8 would exceed it and fall back to the
    // non-canonical-but-faithful encoding.
    for leaves in 2..=7 {
        assert_canon_invariant(&star(leaves, 0, 0), 12, 0x57A4 ^ leaves as u64);
        assert_canon_invariant(&star(leaves, 1, 0), 12, 0x57A5 ^ leaves as u64);
    }
}

#[test]
fn different_shapes_get_different_codes() {
    // Same n and m, same uniform label, different structure: the 6-cycle
    // vs two triangles sharing nothing (disconnected) vs K4 minus a
    // perfect matching (= 4-cycle) are pairwise distinguishable.
    let c6 = cycle(6, 0);
    let two_triangles = graph_from_edges(
        &[0, 0, 0, 0, 0, 0],
        &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
    );
    assert_ne!(
        canonical_form(&c6).code,
        canonical_form(&two_triangles).code
    );
    // Label position matters: hub-labeled star vs leaf-labeled star.
    assert_ne!(
        canonical_form(&star(3, 1, 0)).code,
        canonical_form(&star(3, 0, 1)).code
    );
}

#[test]
fn mixed_label_cycle_with_rotational_symmetry() {
    // Alternating labels on an even cycle: the automorphism group is the
    // dihedral subgroup preserving the 2-coloring — still nontrivial.
    for n in [4usize, 6, 8, 10] {
        let labels: Vec<Label> = (0..n).map(|i| (i % 2) as Label).collect();
        let edges: Vec<(VertexId, VertexId)> = (0..n)
            .map(|i| (i as VertexId, ((i + 1) % n) as VertexId))
            .collect();
        let g = graph_from_edges(&labels, &edges);
        assert_canon_invariant(&g, 12, 0xD1A1u64 ^ n as u64);
    }
}
