//! # sm-shard — partitioned data graph + scatter-gather sharded serving
//!
//! Horizontal scale-out for the query service: the data graph is
//! partitioned across `k` shards, each backed by its own
//! [`sm_service::Service`] (worker pool, plan cache, admission control,
//! deadlines), and a [`ShardedService`] router presents the same
//! client contract as a single service.
//!
//! - **Partitioning** ([`partition`]) — hash or label-aware vertex
//!   ownership plus **k-hop halo replication**: each shard also holds
//!   every vertex within `halo_depth` hops of an owned one, sized to
//!   the maximum supported query diameter, so any embedding is fully
//!   contained in the shard owning its minimum-global-id vertex.
//! - **Scatter-gather queries** ([`router`]) — a submission fans out to
//!   all shards; shard-local embeddings are enumerated in parallel and
//!   stitched back through the halo with **exactly-once attribution**
//!   (minimum-id ownership, the analogue of sm-delta's
//!   first-changed-edge rule). Caps are exact across shards; outcomes,
//!   deadlines and backpressure behave as on a single service.
//! - **Epoch-consistent updates** — one global versioned commit routes
//!   per-shard delta batches under a write lock, so a concurrent query
//!   never observes a torn (mixed-epoch) scatter; standing queries stay
//!   exactly-once correct across cross-shard insertions and deletions.
//! - **Durability** — [`ShardedService::new_durable`] /
//!   [`ShardedService::open`] hang an `sm-durable` WAL + snapshot store
//!   off the router's single global commit point: one WAL record per
//!   cross-shard batch (per-shard state is derived and never
//!   persisted), and recovery repartitions the recovered global graph
//!   under whatever shard layout it is reopened with.
//!
//! Zero external dependencies, like the rest of the workspace.

#![warn(missing_docs)]

pub mod partition;
pub mod router;

pub use partition::{assign_owners, Partition, PartitionStrategy, ShardPiece};
pub use router::{
    ShardConfig, ShardDetail, ShardStandingId, ShardedMetricsReport, ShardedService,
    ShardedUpdateReport,
};

#[cfg(test)]
mod asserts {
    /// The router moves streams and maps across threads; these bounds
    /// make that legal.
    #[test]
    fn shared_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::ShardedService>();
    }
}
