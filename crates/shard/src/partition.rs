//! Graph partitioning with k-hop halo replication.
//!
//! A partition assigns every data vertex one **owning** shard, then
//! gives each shard the induced subgraph on its owned vertices *plus*
//! every vertex within `halo_depth` hops of one (the **halo**, or ghost
//! vertices). The halo is what makes shard-local enumeration complete:
//! for a connected query `q` with diameter `d ≤ halo_depth`, every
//! embedding's vertices lie within `d` hops of the embedding's
//! minimum-global-id vertex (query paths map to data-graph walks), so
//! the shard owning that minimum vertex holds the whole embedding and
//! all its edges locally. The router keeps each embedding exactly once
//! by attributing it to that owner — the analogue of `sm-delta`'s
//! first-changed-edge rule.

use sm_graph::core_decomposition::core_numbers;
use sm_graph::traversal::khop_ball;
use sm_graph::{Graph, Label, VertexId};
use sm_runtime::rng::splitmix64;
use std::collections::HashMap;

/// How vertices are assigned to owning shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Stateless multiplicative hash of the global vertex id — uniform,
    /// label- and structure-oblivious.
    Hash,
    /// Label-aware balanced assignment: within each label class,
    /// vertices are dealt round-robin in descending core-number (then
    /// degree) order, so every shard gets an even share of each label's
    /// high-core vertices — the ones enumeration roots on.
    LabelAware,
}

impl PartitionStrategy {
    /// Stable lowercase name (CLI/JSON friendly).
    pub fn name(self) -> &'static str {
        match self {
            PartitionStrategy::Hash => "hash",
            PartitionStrategy::LabelAware => "label",
        }
    }

    /// Parse a CLI name (`hash` | `label`).
    pub fn from_name(name: &str) -> Option<PartitionStrategy> {
        match name {
            "hash" => Some(PartitionStrategy::Hash),
            "label" => Some(PartitionStrategy::LabelAware),
            _ => None,
        }
    }
}

/// Owning shard of vertex `v` under the hash strategy.
pub(crate) fn hash_owner(v: VertexId, seed: u64, shards: usize) -> u32 {
    let mut s = (v as u64) ^ seed;
    (splitmix64(&mut s) % shards as u64) as u32
}

/// Assign every vertex of `g` an owning shard. Deterministic for a
/// given `(strategy, shards, seed)`.
pub fn assign_owners(g: &Graph, strategy: PartitionStrategy, shards: usize, seed: u64) -> Vec<u32> {
    let n = g.num_vertices();
    match strategy {
        PartitionStrategy::Hash => (0..n as VertexId)
            .map(|v| hash_owner(v, seed, shards))
            .collect(),
        PartitionStrategy::LabelAware => {
            let cores = core_numbers(g);
            let mut by_label: HashMap<Label, Vec<VertexId>> = HashMap::new();
            for v in 0..n as VertexId {
                by_label.entry(g.label(v)).or_default().push(v);
            }
            let mut owner = vec![0u32; n];
            let mut labels: Vec<Label> = by_label.keys().copied().collect();
            labels.sort_unstable();
            for label in labels {
                let mut verts = by_label.remove(&label).expect("key present");
                verts.sort_unstable_by_key(|&v| {
                    (
                        std::cmp::Reverse(cores[v as usize]),
                        std::cmp::Reverse(g.degree(v)),
                        v,
                    )
                });
                for (i, &v) in verts.iter().enumerate() {
                    owner[v as usize] = (i % shards) as u32;
                }
            }
            owner
        }
    }
}

/// One shard's slice of the data graph.
pub struct ShardPiece {
    /// The local induced subgraph on owned + halo vertices.
    pub graph: Graph,
    /// Local → global vertex-id map (sorted ascending at build time;
    /// grows append-only as vertices join the shard later).
    pub global_of: Vec<VertexId>,
    /// Global → live local vertex-id map.
    pub local_of: HashMap<VertexId, VertexId>,
    /// Owned (non-halo) vertex count.
    pub owned: usize,
}

/// A full partition: per-shard pieces plus the ownership table.
pub struct Partition {
    /// Global vertex id → owning shard.
    pub owner: Vec<u32>,
    /// One piece per shard.
    pub pieces: Vec<ShardPiece>,
}

impl Partition {
    /// Partition `g` into `shards` pieces with `halo_depth`-hop ghost
    /// replication.
    pub fn build(
        g: &Graph,
        strategy: PartitionStrategy,
        shards: usize,
        halo_depth: u32,
        seed: u64,
    ) -> Partition {
        let shards = shards.max(1);
        let owner = assign_owners(g, strategy, shards, seed);
        let mut owned_lists: Vec<Vec<VertexId>> = vec![Vec::new(); shards];
        for (v, &s) in owner.iter().enumerate() {
            owned_lists[s as usize].push(v as VertexId);
        }
        let pieces = owned_lists
            .iter()
            .map(|owned| {
                let members = khop_ball(g, owned, halo_depth);
                let (graph, global_of) = g.induced_subgraph(&members);
                let local_of = global_of
                    .iter()
                    .enumerate()
                    .map(|(l, &gv)| (gv, l as VertexId))
                    .collect();
                ShardPiece {
                    graph,
                    global_of,
                    local_of,
                    owned: owned.len(),
                }
            })
            .collect();
        Partition { owner, pieces }
    }

    /// Total halo (ghost) vertices replicated across all shards.
    pub fn halo_vertices(&self) -> u64 {
        self.pieces
            .iter()
            .map(|p| (p.global_of.len() - p.owned) as u64)
            .sum()
    }

    /// Edge-count skew: the largest shard's local edge count as a
    /// percentage of the even share (`100` = perfectly balanced; `0`
    /// when no shard holds an edge).
    pub fn skew_pct(&self) -> u64 {
        skew_pct(self.pieces.iter().map(|p| p.graph.num_edges() as u64))
    }
}

/// Skew of a load distribution: `100 * max / mean` (0 for an all-zero
/// or empty distribution).
pub(crate) fn skew_pct(loads: impl Iterator<Item = u64>) -> u64 {
    let loads: Vec<u64> = loads.collect();
    let total: u64 = loads.iter().sum();
    if total == 0 {
        return 0;
    }
    let max = *loads.iter().max().expect("nonempty");
    max * 100 * loads.len() as u64 / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_graph::builder::graph_from_edges;
    use sm_graph::gen::rmat::{rmat_graph, RmatParams};

    #[test]
    fn strategy_names_round_trip() {
        for s in [PartitionStrategy::Hash, PartitionStrategy::LabelAware] {
            assert_eq!(PartitionStrategy::from_name(s.name()), Some(s));
        }
        assert_eq!(PartitionStrategy::from_name("bogus"), None);
    }

    #[test]
    fn single_shard_owns_everything_with_no_halo() {
        let g = rmat_graph(200, 4.0, 3, RmatParams::PAPER, 7);
        let p = Partition::build(&g, PartitionStrategy::Hash, 1, 2, 0);
        assert_eq!(p.pieces.len(), 1);
        assert_eq!(p.pieces[0].owned, g.num_vertices());
        assert_eq!(p.halo_vertices(), 0);
        assert_eq!(p.pieces[0].graph.num_edges(), g.num_edges());
        assert!(p.owner.iter().all(|&s| s == 0));
    }

    #[test]
    fn every_vertex_owned_exactly_once_and_pieces_cover_balls() {
        let g = rmat_graph(300, 5.0, 4, RmatParams::PAPER, 11);
        for strategy in [PartitionStrategy::Hash, PartitionStrategy::LabelAware] {
            let p = Partition::build(&g, strategy, 4, 2, 42);
            let mut owned_counts = vec![0usize; g.num_vertices()];
            for (s, piece) in p.pieces.iter().enumerate() {
                assert_eq!(piece.global_of.len(), piece.local_of.len());
                for (l, &gv) in piece.global_of.iter().enumerate() {
                    assert_eq!(piece.local_of[&gv], l as VertexId);
                    assert_eq!(piece.graph.label(l as VertexId), g.label(gv));
                    if p.owner[gv as usize] == s as u32 {
                        owned_counts[gv as usize] += 1;
                    }
                }
                // Owned vertices are all members.
                for (v, &o) in p.owner.iter().enumerate() {
                    if o == s as u32 {
                        assert!(piece.local_of.contains_key(&(v as VertexId)));
                    }
                }
            }
            assert!(owned_counts.iter().all(|&c| c == 1), "{strategy:?}");
        }
    }

    #[test]
    fn local_edges_are_global_edges() {
        let g = rmat_graph(250, 6.0, 3, RmatParams::PAPER, 3);
        let p = Partition::build(&g, PartitionStrategy::LabelAware, 3, 2, 0);
        for piece in &p.pieces {
            for (lu, lv) in piece.graph.edges() {
                assert!(g.has_edge(piece.global_of[lu as usize], piece.global_of[lv as usize]));
            }
        }
    }

    #[test]
    fn label_aware_balances_each_label() {
        let g = rmat_graph(400, 5.0, 2, RmatParams::PAPER, 19);
        let owner = assign_owners(&g, PartitionStrategy::LabelAware, 4, 0);
        for label in 0..2 {
            let mut counts = [0usize; 4];
            for &v in g.vertices_with_label(label) {
                counts[owner[v as usize] as usize] += 1;
            }
            let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(max - min <= 1, "label {label} counts {counts:?}");
        }
    }

    #[test]
    fn skew_math() {
        assert_eq!(skew_pct([10, 10, 10, 10].into_iter()), 100);
        assert_eq!(skew_pct([40, 0, 0, 0].into_iter()), 400);
        assert_eq!(skew_pct(std::iter::empty()), 0);
    }

    #[test]
    fn halo_grows_with_depth() {
        let g = graph_from_edges(&[0; 6], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p0 = Partition::build(&g, PartitionStrategy::Hash, 2, 0, 1);
        let p2 = Partition::build(&g, PartitionStrategy::Hash, 2, 2, 1);
        assert_eq!(p0.halo_vertices(), 0);
        assert!(p2.halo_vertices() > 0);
    }
}
