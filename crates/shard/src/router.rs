//! The scatter-gather router: one [`sm_service::Service`] per shard
//! behind a single service-shaped front door.
//!
//! # Query path
//!
//! [`ShardedService::submit`] fans the request out to every shard
//! (always streaming, always uncapped — see below), then a gather
//! thread drains the per-shard [`ResultStream`]s, remaps local vertex
//! ids to global ids, and keeps an embedding **iff the shard that
//! produced it owns the embedding's minimum global vertex id**. The
//! halo guarantees the owner shard finds every such embedding locally
//! (see [`crate::partition`]), and the minimum-id rule guarantees no
//! other shard double-reports it — the same exactly-once shape as
//! sm-delta's first-changed-edge attribution. Kept embeddings flow into
//! an ordinary backpressured [`ResultStream`] via the service's
//! [`sm_service::result_channel`] producer hook, so clients see the
//! normal service contract: bounded buffering, drop-to-cancel, one
//! terminal [`QueryReport`].
//!
//! **Caps are exact across shards.** A shard cannot apply a per-query
//! cap soundly — it cannot know which of its local embeddings the
//! router will attribute to it. Shards therefore always run uncapped
//! (per-shard configs get `default_cap = None`) and the router counts
//! *owned* embeddings, stopping — and cancelling every shard — at
//! exactly the global cap. Deadlines stay per-shard: any shard's
//! deadline marks the merged counts partial (`Deadline` outcome), which
//! preserves deadline-on-empty semantics.
//!
//! # Update path
//!
//! [`ShardedService::apply_update`] commits the batch once to a
//! router-level [`VersionedGraph`] (the global source of truth), then
//! recomputes each shard's k-hop membership on the post-state, diffs it
//! against the shard's current membership, and applies one local batch
//! per shard: joined vertices are added (in sorted global-id order, so
//! predicted local ids match the service's dense assignment), departed
//! vertices are tombstoned, and edge ops are routed through each
//! shard's global→local map ([`UpdateBatch::map_vertices`]) — relying
//! on the versioned graph's commit normalization to ignore duplicates.
//!
//! **Epoch coherence**: submissions take the router state's read lock
//! for the whole fan-out; `apply_update` holds the write lock while
//! applying every per-shard batch. A query therefore sees all shards
//! pre-update or all shards post-update, never a torn mix; queries
//! already in flight keep their admission-time graph via `Arc`, exactly
//! like a single service.

use crate::partition::{hash_owner, skew_pct, Partition, PartitionStrategy};
use sm_delta::{GraphView, Snapshot, UpdateBatch, VersionedGraph};
use sm_durable::{
    DurabilityOptions, DurableStore, RecoveryReport, SnapshotData, StandingSnapshot, WalRecord,
};
use sm_graph::traversal::{diameter, khop_ball};
use sm_graph::{Graph, Label, VertexId};
use sm_match::{MatchSemantics, OutputMode, Termination};
use sm_runtime::metrics::prom;
use sm_runtime::trace::{Counter, CounterBlock};
use sm_runtime::CancelToken;
use sm_service::{
    result_channel, CountFilter, MetricsReport, QueryReport, QueryRequest, ResultSink,
    ResultStream, Service, ServiceConfig, ServiceOutcome, StandingError,
};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::thread;
use std::time::{Duration, Instant};

/// Sharded-tier configuration.
#[derive(Clone)]
pub struct ShardConfig {
    /// Number of shards (each gets its own [`Service`] and worker
    /// pool). Clamped to at least 1.
    pub shards: usize,
    /// How vertices are assigned to owning shards.
    pub strategy: PartitionStrategy,
    /// Halo (ghost) replication depth — the maximum query diameter the
    /// tier can answer. Larger halos support wider queries at the cost
    /// of more replication.
    pub halo_depth: u32,
    /// Seed for the hash partitioner.
    pub seed: u64,
    /// Per-shard service configuration. `default_cap` is taken over by
    /// the router (shards always enumerate uncapped); everything else —
    /// workers, admission bounds, deadlines, pipeline, trace — applies
    /// to each shard's own service.
    pub service: ServiceConfig,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 2,
            strategy: PartitionStrategy::Hash,
            halo_depth: 3,
            seed: 0,
            service: ServiceConfig::default(),
        }
    }
}

/// Handle to a standing query registered with
/// [`ShardedService::register_standing`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardStandingId(usize);

/// What one [`ShardedService::apply_update`] call did, merged across
/// shards. Graph-shape counts (`edges_inserted`, …) are global — a
/// halo-replicated edge counts once, not once per holding shard.
#[derive(Clone, Debug)]
pub struct ShardedUpdateReport {
    /// Router epoch after the update (unchanged for a no-op batch).
    pub epoch: u64,
    /// Whether the batch normalized to nothing.
    pub noop: bool,
    /// Edges inserted (global, post-normalization).
    pub edges_inserted: usize,
    /// Edges deleted (global, including edges of deleted vertices).
    pub edges_deleted: usize,
    /// Vertices added (global).
    pub vertices_added: usize,
    /// Vertices tombstoned (global).
    pub vertices_deleted: usize,
    /// Cached plans retained, summed over shards.
    pub plans_retained: usize,
    /// Cached plans evicted, summed over shards.
    pub plans_evicted: usize,
    /// Standing-query embeddings added incrementally, summed over
    /// shards (halo replicas included — this counts per-shard work).
    pub incremental_added: u64,
    /// Standing-query embeddings retracted, summed over shards.
    pub incremental_removed: u64,
    /// Shards whose local state actually changed.
    pub shards_touched: usize,
    /// Wall-clock time of the whole cross-shard apply.
    pub elapsed: Duration,
}

/// Telemetry snapshot of the whole sharded tier (see
/// [`ShardedService::metrics_report`]).
///
/// `merged` is exactly what a single-service report would look like if
/// one service had done all the work: shard histograms merged,
/// rolling-window totals summed, counters combined under the registry's
/// sum/gauge rules with the router's own shard-path counters
/// (`queries_fanned_out`, `boundary_embeddings_stitched`, router-level
/// rejections, `topk_early_exits`) and gauges
/// (`halo_vertices_replicated`, `shard_skew`) folded in. `per_shard`
/// keeps each shard's unmerged report for skew diagnosis — a balanced
/// merged p99 can hide one hot shard.
#[derive(Clone, Debug)]
pub struct ShardedMetricsReport {
    /// Cross-shard merge, router counters included.
    pub merged: MetricsReport,
    /// Each shard's own report, indexed by shard id.
    pub per_shard: Vec<MetricsReport>,
}

impl ShardedMetricsReport {
    /// Prometheus-style text exposition: the merged families (no
    /// `shard` label) plus every shard's series tagged `shard="i"`,
    /// folded into the same metric families.
    pub fn to_prometheus(&self) -> String {
        let mut fams = self.merged.families(&[]);
        for (i, r) in self.per_shard.iter().enumerate() {
            let shard = i.to_string();
            for f in r.families(&[("shard", shard.as_str())]) {
                match fams.iter_mut().find(|m| m.name == f.name) {
                    Some(m) => m.series.extend(f.series),
                    None => fams.push(f),
                }
            }
        }
        prom::render(&fams)
    }
}

/// Per-shard attribution snapshot (see
/// [`ShardedService::shard_details`]).
#[derive(Clone, Debug)]
pub struct ShardDetail {
    /// Shard index.
    pub shard: usize,
    /// Live vertices this shard owns.
    pub owned: usize,
    /// Live halo (ghost) vertices replicated onto this shard.
    pub halo: usize,
    /// Live local edges.
    pub local_edges: usize,
    /// The shard service's epoch (shards whose region an update missed
    /// stay on their old epoch — local no-op).
    pub epoch: u64,
    /// The shard service's counter block.
    pub counters: CounterBlock,
}

struct ShardState {
    service: Service,
    /// Local → global id map. Append-only (tombstoned locals keep their
    /// entry); swapped wholesale under the write lock so gather threads
    /// capture a consistent `Arc` at submit time.
    global_of: Arc<Vec<VertexId>>,
    /// Global → live local id map.
    local_of: HashMap<VertexId, VertexId>,
    /// Live local edge count (maintained on update for skew stats).
    local_edges: usize,
}

struct RouterState {
    shards: Vec<ShardState>,
    /// Global vertex → owning shard. Tombstoned vertices keep their
    /// owner (ids are never reused).
    owner: Arc<Vec<u32>>,
    /// The global source of truth; per-shard graphs are derived views.
    versioned: VersionedGraph,
    epoch: u64,
    /// Per-label owned-vertex counts per shard, for label-aware
    /// assignment of vertices added later.
    label_counts: HashMap<Label, Vec<u64>>,
    /// Live halo vertices across all shards (gauge).
    halo: u64,
    /// Local-edge skew across shards in percent (gauge).
    skew: u64,
    /// Per-router-standing-id: the per-shard service standing ids.
    standing: Vec<Vec<sm_service::StandingId>>,
    /// The registered standing queries themselves (index-aligned with
    /// `standing`) — what a durable snapshot persists.
    standing_queries: Vec<Graph>,
    /// Durable store when the tier was created via
    /// [`ShardedService::new_durable`] / [`ShardedService::open`]. The
    /// router's single global commit point means per-shard services stay
    /// in-memory: one WAL record per cross-shard batch, not one per
    /// shard.
    durable: Option<DurableStore>,
    /// Report of the recovery that produced this tier, if any.
    recovery: Option<RecoveryReport>,
    /// Recoveries performed (0 or 1) and WAL batches replayed — router
    /// counter state, mutated under the write lock.
    recoveries: u64,
    replayed: u64,
}

/// A partitioned, scatter-gather sharded query service with the same
/// client contract as a single [`Service`].
///
/// ```
/// use sm_graph::builder::graph_from_edges;
/// use sm_service::{QueryRequest, ServiceOutcome};
/// use sm_shard::{ShardConfig, ShardedService};
///
/// let g = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (0, 2), (2, 3)]);
/// let svc = ShardedService::new(g, ShardConfig::default());
/// let tri = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
/// let report = svc.submit(QueryRequest::count(tri)).wait();
/// assert_eq!(report.outcome, ServiceOutcome::Complete);
/// assert_eq!(report.matches, 6); // one triangle, six automorphic mappings
/// ```
pub struct ShardedService {
    state: RwLock<RouterState>,
    cfg: ShardConfig,
    shards: usize,
    fanned: AtomicU64,
    stitched: Arc<AtomicU64>,
    rejected: AtomicU64,
    /// Top-k queries whose gather terminated by filling all k slots.
    topk_exits: Arc<AtomicU64>,
    /// The one feedback store every Auto-mode shard's planner shares: an
    /// observation on any shard re-ranks plans on all of them. `None`
    /// under fixed plan selection.
    planner_feedback: Option<Arc<sm_planner::FeedbackStore>>,
}

impl ShardedService {
    /// Partition `graph` and start one service per shard.
    pub fn new(graph: Graph, cfg: ShardConfig) -> Self {
        let shards = cfg.shards.max(1);
        let part = Partition::build(&graph, cfg.strategy, shards, cfg.halo_depth, cfg.seed);
        let halo = part.halo_vertices();
        let skew = part.skew_pct();
        let Partition { owner, pieces } = part;
        let mut label_counts: HashMap<Label, Vec<u64>> = HashMap::new();
        for (v, &o) in owner.iter().enumerate() {
            label_counts
                .entry(graph.label(v as VertexId))
                .or_insert_with(|| vec![0; shards])[o as usize] += 1;
        }
        // Shards never cap locally — the router applies the global cap
        // to the owned embeddings it keeps (see module docs).
        let mut svc_cfg = cfg.service.clone();
        svc_cfg.default_cap = None;
        // Auto-mode shards share one feedback store so every shard's
        // planner learns from every shard's observations.
        if svc_cfg.base_config.plan == sm_match::PlanSelection::Auto
            && svc_cfg.planner_feedback.is_none()
        {
            svc_cfg.planner_feedback = Some(Arc::new(sm_planner::FeedbackStore::new()));
        }
        let planner_feedback = svc_cfg.planner_feedback.clone();
        let shard_states = pieces
            .into_iter()
            .map(|p| ShardState {
                local_edges: p.graph.num_edges(),
                service: Service::new(p.graph, svc_cfg.clone()),
                global_of: Arc::new(p.global_of),
                local_of: p.local_of,
            })
            .collect();
        ShardedService {
            state: RwLock::new(RouterState {
                shards: shard_states,
                owner: Arc::new(owner),
                versioned: VersionedGraph::new(graph),
                epoch: 0,
                label_counts,
                halo,
                skew,
                standing: Vec::new(),
                standing_queries: Vec::new(),
                durable: None,
                recovery: None,
                recoveries: 0,
                replayed: 0,
            }),
            cfg,
            shards,
            fanned: AtomicU64::new(0),
            stitched: Arc::new(AtomicU64::new(0)),
            rejected: AtomicU64::new(0),
            topk_exits: Arc::new(AtomicU64::new(0)),
            planner_feedback,
        }
    }

    /// Start a durable sharded tier over `graph` in a fresh directory:
    /// writes the epoch-0 snapshot of the global graph, then opens the
    /// WAL. Durability lives at the router's single global commit point
    /// — per-shard services stay purely in-memory (their state is
    /// derived), so one cross-shard batch costs one WAL record. Fails
    /// with `AlreadyExists` if `dir` already holds a snapshot.
    pub fn new_durable(
        graph: Graph,
        cfg: ShardConfig,
        dir: &Path,
        opts: DurabilityOptions,
    ) -> io::Result<Self> {
        let svc = ShardedService::new(graph, cfg);
        {
            let mut state = svc.state.write().expect("state poisoned");
            let initial = snapshot_data(&state);
            state.durable = Some(DurableStore::create(dir, opts, &initial)?);
        }
        Ok(svc)
    }

    /// Recover a durable sharded tier from `dir`: page in the newest
    /// valid snapshot of the global graph, repartition it across
    /// `cfg.shards`, re-register the snapshot's standing queries, replay
    /// the WAL tail through the normal cross-shard update path, and
    /// resume the router epoch. The shard layout need not match the
    /// crashed tier's — ownership attribution affects which shard
    /// reports an embedding, never the merged result.
    pub fn open(dir: &Path, cfg: ShardConfig, opts: DurabilityOptions) -> io::Result<Self> {
        let (store, snap, tail, report) = DurableStore::open(dir, opts)?;
        let svc = ShardedService::new(snap.graph, cfg);
        // Restore learned plan costs into the shared store every shard's
        // planner already points at. Advisory: a missing or corrupt
        // image means re-learning, never a failed recovery.
        if let Some(fb) = &svc.planner_feedback {
            if let Some(bytes) = DurableStore::read_feedback(dir)? {
                let _ = fb.merge_bytes(&bytes);
            }
        }
        svc.state.write().expect("state poisoned").epoch = snap.epoch;
        let unsupported = || {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "persisted standing query is not supported by this shard configuration",
            )
        };
        for s in &snap.standing {
            svc.register_standing_impl(&s.query, false)
                .ok_or_else(unsupported)?;
        }
        let mut replayed = 0u64;
        for rec in tail {
            match rec {
                WalRecord::Batch { epoch, batch } => {
                    let r = svc.apply_update_inner(&batch, false);
                    if r.noop || r.epoch != epoch {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "WAL replay diverged from the logged epoch",
                        ));
                    }
                    replayed += 1;
                }
                WalRecord::Standing { query, .. } => {
                    svc.register_standing_impl(&query, false)
                        .ok_or_else(unsupported)?;
                }
            }
        }
        // Install the store only now: replay must never re-append the
        // records it is replaying.
        let mut state = svc.state.write().expect("state poisoned");
        state.durable = Some(store);
        state.recovery = Some(report);
        state.recoveries = 1;
        state.replayed = replayed;
        drop(state);
        Ok(svc)
    }

    /// Whether this tier persists updates (created via
    /// [`ShardedService::new_durable`] / [`ShardedService::open`]).
    pub fn is_durable(&self) -> bool {
        self.state.read().expect("state poisoned").durable.is_some()
    }

    /// What recovery did, when this tier came from
    /// [`ShardedService::open`].
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.state.read().expect("state poisoned").recovery
    }

    /// Force a snapshot now (manual compaction) of the global graph and
    /// standing sets; rotates the WAL and prunes what the new snapshot
    /// supersedes. Returns `Ok(false)` on a non-durable tier.
    pub fn snapshot_now(&self) -> io::Result<bool> {
        let mut guard = self.state.write().expect("state poisoned");
        let state = &mut *guard;
        if state.durable.is_none() {
            return Ok(false);
        }
        let data = snapshot_data(state);
        let store = state.durable.as_mut().expect("durable present");
        store.write_snapshot(&data)?;
        // Persist the cross-shard learned plan costs alongside.
        if let Some(fb) = &self.planner_feedback {
            store.write_feedback(&fb.to_bytes())?;
        }
        Ok(true)
    }

    /// Flush the WAL to disk regardless of the fsync policy.
    pub fn sync_durable(&self) -> io::Result<()> {
        match self.state.write().expect("state poisoned").durable.as_mut() {
            Some(store) => store.sync(),
            None => Ok(()),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Router epoch: bumped once per effective cross-shard update.
    pub fn epoch(&self) -> u64 {
        self.state.read().expect("state poisoned").epoch
    }

    /// Whether the sharded tier can answer `query`. With more than one
    /// shard the query must be connected, have at least one edge, and
    /// have diameter at most the halo depth — otherwise shard-local
    /// enumeration would be incomplete and the submission is
    /// `Rejected`. A single shard holds the whole graph and supports
    /// anything the underlying service does.
    pub fn supports(&self, query: &Graph) -> bool {
        self.shards == 1
            || (query.num_edges() >= 1 && diameter(query).is_some_and(|d| d <= self.cfg.halo_depth))
    }

    /// Submit a query; returns immediately with the merged result
    /// stream. See the module docs for the scatter-gather contract.
    pub fn submit(&self, req: QueryRequest) -> ResultStream {
        let started = Instant::now();
        // SampleK needs a sequential exhaustive pass (see the single
        // service's rejection) and additionally cannot be merged from
        // per-shard reservoirs uniformly — reject before any fan-out.
        let unsupported_semantics = matches!(req.semantics.termination, Termination::SampleK(..));
        if unsupported_semantics || !self.supports(&req.query) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            let (sink, stream) = result_channel(1, CancelToken::new());
            sink.finish(QueryReport {
                outcome: ServiceOutcome::Rejected,
                matches: 0,
                recursions: 0,
                cache_hit: false,
                plan_build_ns: 0,
                elapsed: started.elapsed(),
            });
            return stream;
        }
        // A TopK termination is exactly a global cap; the router's owned
        // count is exact across shards, so the k results are exact too.
        let cap = match (
            req.max_matches.or(self.cfg.service.default_cap),
            req.semantics.cap(),
        ) {
            (Some(m), Some(k)) => Some(m.min(k)),
            (m, k) => m.or(k),
        };
        let deliver = req.deliver;
        // Count-only with no cap: no embedding ever needs to reach the
        // router. Each shard counts its *owned* embeddings locally (the
        // min-global-id ownership rule, pushed down as a count filter)
        // and the gather step just sums the per-shard reports — no
        // per-embedding streaming, no gather-side drain loop.
        if req.semantics.output == OutputMode::CountOnly
            && cap.is_none()
            && !deliver
            && req.count_filter.is_none()
        {
            return self.submit_count_pushdown(req, started);
        }
        // Read lock for the whole fan-out: every shard is submitted to
        // under the same router epoch (no torn scatter).
        let (streams, owner) = {
            let state = self.state.read().expect("state poisoned");
            let streams: Vec<(ResultStream, Arc<Vec<VertexId>>)> = state
                .shards
                .iter()
                .map(|shard| {
                    let sreq = QueryRequest {
                        query: req.query.clone(),
                        deadline: req.deadline,
                        max_matches: None, // uncapped: the router owns the cap
                        deliver: true,     // router needs embeddings to attribute
                        // Injectivity is the shard's to enforce (a halo
                        // ball covers every homomorphic image too — its
                        // diameter never exceeds the query's); output and
                        // termination are the router's.
                        semantics: MatchSemantics {
                            injectivity: req.semantics.injectivity,
                            output: OutputMode::Embeddings,
                            termination: Termination::All,
                        },
                        count_filter: None,
                    };
                    (shard.service.submit(sreq), shard.global_of.clone())
                })
                .collect();
            (streams, state.owner.clone())
        };
        self.fanned
            .fetch_add(streams.len() as u64, Ordering::Relaxed);
        let (sink, stream) = result_channel(self.cfg.service.stream_capacity, CancelToken::new());
        let stitched = self.stitched.clone();
        let topk_exits = self.topk_exits.clone();
        let input = GatherInput {
            streams,
            owner,
            cap,
            topk: matches!(req.semantics.termination, Termination::TopK(_)),
            filter: req.count_filter,
            deliver,
            started,
        };
        thread::Builder::new()
            .name("sm-shard-gather".into())
            .spawn(move || gather(sink, input, stitched, topk_exits))
            .expect("spawn gather thread");
        stream
    }

    /// The count-only pushdown path: fan out per-shard **count** requests
    /// carrying the min-global-id ownership rule as a count filter, then
    /// sum the per-shard owned counts. Exactly-once by the same argument
    /// as the streaming path — ownership is decided per embedding by data
    /// the shard already has (`global_of`, `owner`), just evaluated where
    /// the embedding is found instead of where it would be merged.
    fn submit_count_pushdown(&self, req: QueryRequest, started: Instant) -> ResultStream {
        let streams: Vec<ResultStream> = {
            let state = self.state.read().expect("state poisoned");
            let owner = state.owner.clone();
            state
                .shards
                .iter()
                .enumerate()
                .map(|(si, shard)| {
                    let global_of = shard.global_of.clone();
                    let owner = owner.clone();
                    let stitched = self.stitched.clone();
                    let filter: CountFilter = Arc::new(move |m: &[VertexId]| {
                        let vmin = m
                            .iter()
                            .map(|&l| global_of[l as usize])
                            .min()
                            .expect("nonempty embedding");
                        if owner[vmin as usize] as usize != si {
                            return false;
                        }
                        if m.iter()
                            .any(|&l| owner[global_of[l as usize] as usize] as usize != si)
                        {
                            stitched.fetch_add(1, Ordering::Relaxed);
                        }
                        true
                    });
                    let sreq = QueryRequest {
                        query: req.query.clone(),
                        deadline: req.deadline,
                        max_matches: None,
                        deliver: false,
                        semantics: MatchSemantics {
                            injectivity: req.semantics.injectivity,
                            output: OutputMode::CountOnly,
                            termination: Termination::All,
                        },
                        count_filter: Some(filter),
                    };
                    shard.service.submit(sreq)
                })
                .collect()
        };
        self.fanned
            .fetch_add(streams.len() as u64, Ordering::Relaxed);
        let (sink, stream) = result_channel(1, CancelToken::new());
        thread::Builder::new()
            .name("sm-shard-count".into())
            .spawn(move || {
                let mut matches = 0u64;
                let mut recursions = 0u64;
                let mut outcome = ServiceOutcome::Complete;
                let mut cache_hit = true;
                let mut plan_build_ns = 0u64;
                for s in streams {
                    if sink.client_cancelled() {
                        s.cancel();
                    }
                    let r = s.wait();
                    matches += r.matches;
                    recursions += r.recursions;
                    outcome = outcome.worst(r.outcome);
                    cache_hit &= r.cache_hit;
                    plan_build_ns = plan_build_ns.max(r.plan_build_ns);
                }
                sink.finish(QueryReport {
                    outcome,
                    matches,
                    recursions,
                    cache_hit,
                    plan_build_ns,
                    elapsed: started.elapsed(),
                });
            })
            .expect("spawn count-gather thread");
        stream
    }

    /// Submit and block for the terminal report (count-only helper).
    pub fn run_count(&self, query: Graph) -> QueryReport {
        self.submit(QueryRequest::count(query)).wait()
    }

    /// Apply an update batch atomically across every shard: commit once
    /// to the global versioned graph, bump the router epoch, and route
    /// one derived batch to each shard whose membership or edges it
    /// touches — all under the write lock, so no concurrent submission
    /// observes a torn (mixed-epoch) scatter.
    pub fn apply_update(&self, batch: &UpdateBatch) -> ShardedUpdateReport {
        self.apply_update_inner(batch, true)
    }

    /// [`ShardedService::apply_update`] body with a durability switch
    /// (`log == false` is the recovery replay path, which must not
    /// re-append the records it replays). The batch is committed — and,
    /// when durable and effective, WAL-appended — through
    /// [`sm_durable::commit_batch`], the same single commit point
    /// [`Service::apply_update`] uses: the per-tier durability rides on
    /// the router's one global [`VersionedGraph`], so per-shard derived
    /// batches are never logged.
    fn apply_update_inner(&self, batch: &UpdateBatch, log: bool) -> ShardedUpdateReport {
        let started = Instant::now();
        let mut guard = self.state.write().expect("state poisoned");
        let state = &mut *guard;
        // Abort (not panic) on WAL I/O failure: a panic would poison the
        // state lock held here (see `sm_durable::durable_io`).
        let committed = sm_durable::durable_io(
            "WAL batch append",
            sm_durable::commit_batch(
                &state.versioned,
                if log { state.durable.as_mut() } else { None },
                state.epoch + 1,
                batch,
            ),
        );
        let info = &committed.info;
        if info.is_noop() {
            return ShardedUpdateReport {
                epoch: state.epoch,
                noop: true,
                edges_inserted: 0,
                edges_deleted: 0,
                vertices_added: 0,
                vertices_deleted: 0,
                plans_retained: 0,
                plans_evicted: 0,
                incremental_added: 0,
                incremental_removed: 0,
                shards_touched: 0,
                elapsed: started.elapsed(),
            };
        }
        state.epoch += 1;
        let shards = state.shards.len();
        // Assign owners to new vertices (ids are dense from the old
        // vertex count, so plain pushes line up).
        let mut owner = (*state.owner).clone();
        for &v in &info.vertices_added {
            let label = committed.post.label(v);
            let o = match self.cfg.strategy {
                PartitionStrategy::Hash => hash_owner(v, self.cfg.seed, shards),
                PartitionStrategy::LabelAware => {
                    // Least-loaded shard for this label, lowest index on
                    // ties — deterministic.
                    let counts = state
                        .label_counts
                        .entry(label)
                        .or_insert_with(|| vec![0; shards]);
                    counts
                        .iter()
                        .enumerate()
                        .min_by_key(|&(i, &c)| (c, i))
                        .map(|(i, _)| i)
                        .expect("at least one shard") as u32
                }
            };
            if let Some(counts) = state.label_counts.get_mut(&label) {
                counts[o as usize] += 1;
            }
            debug_assert_eq!(owner.len(), v as usize);
            owner.push(o);
        }
        for &v in &info.vertices_deleted {
            if let Some(counts) = state.label_counts.get_mut(&committed.post.label(v)) {
                let c = &mut counts[owner[v as usize] as usize];
                *c = c.saturating_sub(1);
            }
        }
        // The post graph, with tombstones as isolated labeled vertices —
        // the same shape every shard's local graph mirrors.
        let (post_g, _) = committed.post.materialize();
        let mut owned_lists: Vec<Vec<VertexId>> = vec![Vec::new(); shards];
        for (v, &o) in owner.iter().enumerate() {
            owned_lists[o as usize].push(v as VertexId);
        }
        let mut plans_retained = 0;
        let mut plans_evicted = 0;
        let mut incremental_added = 0;
        let mut incremental_removed = 0;
        let mut shards_touched = 0;
        let mut halo = 0u64;
        let mut edge_loads = vec![0u64; shards];
        for (si, shard) in state.shards.iter_mut().enumerate() {
            let members = khop_ball(&post_g, &owned_lists[si], self.cfg.halo_depth);
            let mut member_set = vec![false; post_g.num_vertices()];
            for &m in &members {
                member_set[m as usize] = true;
            }
            // Joined vertices get fresh local ids in sorted global order
            // (matching the service's dense assignment); departed ones
            // are tombstoned locally.
            let joined: Vec<VertexId> = members
                .iter()
                .copied()
                .filter(|g| !shard.local_of.contains_key(g))
                .collect();
            let mut left: Vec<VertexId> = shard
                .local_of
                .keys()
                .copied()
                .filter(|&g| !member_set[g as usize])
                .collect();
            left.sort_unstable();
            let mut lb = UpdateBatch::new();
            let mut new_global_of = (*shard.global_of).clone();
            for &g in &joined {
                lb = lb.add_vertex(post_g.label(g));
                shard.local_of.insert(g, new_global_of.len() as VertexId);
                new_global_of.push(g);
            }
            for &g in &left {
                let l = shard
                    .local_of
                    .remove(&g)
                    .expect("departed vertex was local");
                lb = lb.delete_vertex(l);
            }
            // Route the global ops through the updated local map; ops
            // naming vertices this shard doesn't hold drop out, and
            // duplicates are normalized away by the shard's commit.
            let gops = UpdateBatch {
                add_vertices: Vec::new(),
                delete_vertices: info.vertices_deleted.clone(),
                add_edges: info.edges_inserted.clone(),
                delete_edges: info.edges_deleted.clone(),
            };
            let mapped = gops.map_vertices(|g| shard.local_of.get(&g).copied());
            lb.delete_vertices.extend(mapped.delete_vertices);
            lb.add_edges.extend(mapped.add_edges);
            lb.delete_edges.extend(mapped.delete_edges);
            // Pre-existing edges incident to joined vertices enter with
            // them.
            for &g in &joined {
                let lg = shard.local_of[&g];
                for &w in post_g.neighbors(g) {
                    if let Some(&lw) = shard.local_of.get(&w) {
                        lb.add_edges.push((lg, lw));
                    }
                }
            }
            let rep = shard.service.apply_update(&lb);
            if !rep.noop {
                shards_touched += 1;
            }
            plans_retained += rep.plans_retained;
            plans_evicted += rep.plans_evicted;
            incremental_added += rep.incremental_added;
            incremental_removed += rep.incremental_removed;
            shard.global_of = Arc::new(new_global_of);
            // Stats over live members.
            halo += members
                .iter()
                .filter(|&&g| owner[g as usize] as usize != si)
                .count() as u64;
            let local_edges: usize = members
                .iter()
                .map(|&m| {
                    post_g
                        .neighbors(m)
                        .iter()
                        .filter(|&&w| member_set[w as usize])
                        .count()
                })
                .sum::<usize>()
                / 2;
            shard.local_edges = local_edges;
            edge_loads[si] = local_edges as u64;
        }
        state.owner = Arc::new(owner);
        state.halo = halo;
        state.skew = skew_pct(edge_loads.into_iter());
        // Threshold compaction, still under the write lock so the
        // snapshot captures exactly this epoch. Replay never triggers
        // it: the store is not installed until recovery finishes.
        if log && state.durable.as_ref().is_some_and(|s| s.should_snapshot()) {
            let data = snapshot_data(state);
            let store = state.durable.as_mut().expect("durable present");
            sm_durable::durable_io("threshold snapshot", store.write_snapshot(&data));
            if let Some(fb) = &self.planner_feedback {
                sm_durable::durable_io("feedback sidecar", store.write_feedback(&fb.to_bytes()));
            }
        }
        ShardedUpdateReport {
            epoch: state.epoch,
            noop: false,
            edges_inserted: info.edges_inserted.len(),
            edges_deleted: info.edges_deleted.len(),
            vertices_added: info.vertices_added.len(),
            vertices_deleted: info.vertices_deleted.len(),
            plans_retained,
            plans_evicted,
            incremental_added,
            incremental_removed,
            shards_touched,
            elapsed: started.elapsed(),
        }
    }

    /// Pin a consistent snapshot of the current global graph version.
    pub fn snapshot(&self) -> Snapshot {
        self.state
            .read()
            .expect("state poisoned")
            .versioned
            .snapshot()
    }

    /// Register a standing query on every shard; its merged embedding
    /// set stays current across [`ShardedService::apply_update`] calls.
    /// Returns `None` for queries the tier does not support.
    pub fn register_standing(&self, query: &Graph) -> Option<ShardStandingId> {
        self.register_standing_impl(query, true)
    }

    /// [`ShardedService::register_standing`] body with a durability
    /// switch: the live path logs one `Standing` WAL record at the
    /// router (never per shard); the recovery replay path must not
    /// re-append the record it is replaying.
    fn register_standing_impl(&self, query: &Graph, log: bool) -> Option<ShardStandingId> {
        if !self.supports(query) {
            return None;
        }
        // Write lock: the per-shard initial enumerations must all see
        // the same epoch.
        let mut state = self.state.write().expect("state poisoned");
        let ids: Option<Vec<sm_service::StandingId>> = state
            .shards
            .iter()
            .map(|s| s.service.register_standing(query))
            .collect();
        // Support depends only on the query, so the shards agree.
        let ids = ids?;
        state.standing.push(ids);
        state.standing_queries.push(query.clone());
        let index = state.standing.len() - 1;
        if log {
            if let Some(store) = state.durable.as_mut() {
                sm_durable::durable_io(
                    "WAL standing-registration append",
                    store.append_standing(index as u64, query),
                );
            }
        }
        Some(ShardStandingId(index))
    }

    /// [`ShardedService::register_standing`] with an explicit semantics
    /// check, mirroring [`Service::register_standing_with`]: standing
    /// queries are isomorphic, materializing and run-to-completion only,
    /// and anything else is a typed
    /// [`StandingError::UnsupportedSemantics`].
    pub fn register_standing_with(
        &self,
        query: &Graph,
        semantics: MatchSemantics,
    ) -> Result<ShardStandingId, StandingError> {
        if semantics != MatchSemantics::default() {
            return Err(StandingError::UnsupportedSemantics);
        }
        self.register_standing(query)
            .ok_or(StandingError::UnsupportedQuery)
    }

    /// Current merged embedding set of a standing query, in global
    /// vertex ids, sorted — each embedding exactly once (minimum-id
    /// ownership, same rule as the query path).
    pub fn standing_matches(&self, id: ShardStandingId) -> Vec<Vec<VertexId>> {
        let state = self.state.read().expect("state poisoned");
        merged_standing(&state, id.0)
    }

    /// Current merged embedding count of a standing query.
    pub fn standing_count(&self, id: ShardStandingId) -> usize {
        self.standing_matches(id).len()
    }

    /// Merged counters: every shard service's block plus the router's
    /// shard-path counters (`queries_fanned_out`,
    /// `boundary_embeddings_stitched`, the `halo_vertices_replicated`
    /// and `shard_skew` gauges, and router-level rejections).
    pub fn counters(&self) -> CounterBlock {
        let state = self.state.read().expect("state poisoned");
        let mut b = CounterBlock::new();
        for s in &state.shards {
            b.merge(&s.service.counters());
        }
        b.add(
            Counter::QueriesFannedOut,
            self.fanned.load(Ordering::Relaxed),
        );
        b.add(
            Counter::BoundaryEmbeddingsStitched,
            self.stitched.load(Ordering::Relaxed),
        );
        b.add(
            Counter::QueriesRejected,
            self.rejected.load(Ordering::Relaxed),
        );
        b.add(
            Counter::TopkEarlyExits,
            self.topk_exits.load(Ordering::Relaxed),
        );
        b.record_max(Counter::HaloVerticesReplicated, state.halo);
        b.record_max(Counter::ShardSkew, state.skew);
        if let Some(store) = state.durable.as_ref() {
            b.add(Counter::WalAppends, store.wal_appends());
            b.add(Counter::WalBytes, store.wal_bytes());
            b.add(Counter::SnapshotsWritten, store.snapshots_written());
        }
        b.add(Counter::Recoveries, state.recoveries);
        b.add(Counter::ReplayedBatches, state.replayed);
        b
    }

    /// A coherent telemetry snapshot of the tier: every shard's
    /// [`sm_service::Service::metrics_report`] taken under one read
    /// lock (no torn epoch), merged into a single cross-shard report
    /// with the router's shard-path counters and gauges folded in,
    /// plus the per-shard reports for skew diagnosis. Cheap enough to
    /// poll every second — this is what `experiments top` renders live.
    pub fn metrics_report(&self) -> ShardedMetricsReport {
        let state = self.state.read().expect("state poisoned");
        let per_shard: Vec<MetricsReport> = state
            .shards
            .iter()
            .map(|s| s.service.metrics_report())
            .collect();
        let mut iter = per_shard.iter();
        let mut merged = iter.next().expect("at least one shard").clone();
        for r in iter {
            merged.merge_from(r);
        }
        // The router's own shard-path counters live outside any shard
        // service — fold them in exactly as `counters()` does.
        merged.counters.add(
            Counter::QueriesFannedOut,
            self.fanned.load(Ordering::Relaxed),
        );
        merged.counters.add(
            Counter::BoundaryEmbeddingsStitched,
            self.stitched.load(Ordering::Relaxed),
        );
        merged.counters.add(
            Counter::QueriesRejected,
            self.rejected.load(Ordering::Relaxed),
        );
        merged.counters.add(
            Counter::TopkEarlyExits,
            self.topk_exits.load(Ordering::Relaxed),
        );
        merged
            .counters
            .record_max(Counter::HaloVerticesReplicated, state.halo);
        merged.counters.record_max(Counter::ShardSkew, state.skew);
        ShardedMetricsReport { merged, per_shard }
    }

    /// Per-shard attribution: ownership, replication, load, and each
    /// shard service's counters.
    pub fn shard_details(&self) -> Vec<ShardDetail> {
        let state = self.state.read().expect("state poisoned");
        state
            .shards
            .iter()
            .enumerate()
            .map(|(si, s)| {
                let owned = s
                    .local_of
                    .keys()
                    .filter(|&&g| state.owner[g as usize] as usize == si)
                    .count();
                ShardDetail {
                    shard: si,
                    owned,
                    halo: s.local_of.len() - owned,
                    local_edges: s.local_edges,
                    epoch: s.service.epoch(),
                    counters: s.service.counters(),
                }
            })
            .collect()
    }
}

impl Drop for ShardedService {
    fn drop(&mut self) {
        // Shard services flush their own counters; the router adds only
        // its shard-path block.
        if self.cfg.service.trace.is_enabled() {
            let state = self.state.read().expect("state poisoned");
            let mut b = CounterBlock::new();
            b.add(
                Counter::QueriesFannedOut,
                self.fanned.load(Ordering::Relaxed),
            );
            b.add(
                Counter::BoundaryEmbeddingsStitched,
                self.stitched.load(Ordering::Relaxed),
            );
            b.record_max(Counter::HaloVerticesReplicated, state.halo);
            b.record_max(Counter::ShardSkew, state.skew);
            self.cfg.service.trace.flush_counters(0, &b);
        }
    }
}

/// Merged embedding set of standing query `idx` in global vertex ids,
/// sorted, each embedding exactly once (minimum-id ownership) — callable
/// under either lock mode.
fn merged_standing(state: &RouterState, idx: usize) -> Vec<Vec<VertexId>> {
    let ids = &state.standing[idx];
    let mut out = Vec::new();
    for (si, shard) in state.shards.iter().enumerate() {
        for m in shard.service.standing_matches(ids[si]) {
            let gm: Vec<VertexId> = m.iter().map(|&l| shard.global_of[l as usize]).collect();
            let vmin = *gm.iter().min().expect("nonempty embedding");
            if state.owner[vmin as usize] as usize == si {
                out.push(gm);
            }
        }
    }
    out.sort_unstable();
    out
}

/// The tier's durable state: the *global* graph (from the router's
/// versioned source of truth — per-shard graphs are derived and never
/// persisted) plus every standing query with its merged global
/// embedding set. The epoch is the router epoch, not the versioned
/// graph's internal one — the two diverge after a recovery resets the
/// overlay.
fn snapshot_data(state: &RouterState) -> SnapshotData {
    let (_, graph, nlf) = state.versioned.export_head();
    let label_pairs = sm_graph::label_index::LabelPairEdgeCounts::build(&graph);
    SnapshotData {
        epoch: state.epoch,
        graph,
        nlf,
        label_pairs,
        standing: state
            .standing_queries
            .iter()
            .enumerate()
            .map(|(i, q)| StandingSnapshot {
                query: q.clone(),
                matches: merged_standing(state, i),
            })
            .collect(),
    }
}

struct GatherInput {
    streams: Vec<(ResultStream, Arc<Vec<VertexId>>)>,
    owner: Arc<Vec<u32>>,
    cap: Option<u64>,
    /// Whether the cap came from a `TopK` termination — a cap hit is
    /// then a successful top-k exit, not an overflow event.
    topk: bool,
    /// Client count filter, applied to owned embeddings (global ids)
    /// before they are counted or delivered.
    filter: Option<CountFilter>,
    deliver: bool,
    started: Instant,
}

/// Drain the per-shard streams into the client sink: remap, attribute,
/// cap, merge outcomes. Runs on a detached thread per query; terminates
/// as soon as every shard stream is terminal (shard services terminate
/// stranded streams on drop, so this never outlives them blocked).
fn gather(
    sink: ResultSink,
    input: GatherInput,
    stitched: Arc<AtomicU64>,
    topk_exits: Arc<AtomicU64>,
) {
    let GatherInput {
        streams,
        owner,
        cap,
        topk,
        filter,
        deliver,
        started,
    } = input;
    // A shard that refused admission produced a born-terminal stream —
    // visible now, before any draining. Mirror single-service rejection:
    // nothing ran, nothing is counted.
    if streams.iter().any(|(s, _)| {
        s.report()
            .is_some_and(|r| r.outcome == ServiceOutcome::Rejected)
    }) {
        for (s, _) in &streams {
            s.cancel();
        }
        drop(streams);
        sink.finish(QueryReport {
            outcome: ServiceOutcome::Rejected,
            matches: 0,
            recursions: 0,
            cache_hit: false,
            plan_build_ns: 0,
            elapsed: started.elapsed(),
        });
        return;
    }
    let mut queue: VecDeque<(ResultStream, Arc<Vec<VertexId>>)> = streams.into();
    let mut reports: Vec<QueryReport> = Vec::with_capacity(queue.len());
    let mut delivered = 0u64;
    let mut stitched_here = 0u64;
    let mut cap_hit = false;
    let mut client_gone = false;
    let mut si = 0usize;
    let mut cancel_poll = 0u32;
    while let Some((mut stream, global_of)) = queue.pop_front() {
        if cap_hit || client_gone {
            stream.cancel();
            reports.push(stream.wait());
            si += 1;
            continue;
        }
        for local in stream.by_ref() {
            let gemb: Vec<VertexId> = local.iter().map(|&l| global_of[l as usize]).collect();
            let vmin = *gemb.iter().min().expect("nonempty embedding");
            if owner[vmin as usize] as usize != si {
                continue; // another shard owns (and will report) it
            }
            if filter.as_ref().is_some_and(|f| !f(&gemb)) {
                continue; // owned, but the client's count filter said no
            }
            if gemb.iter().any(|&v| owner[v as usize] as usize != si) {
                stitched_here += 1; // crossed a shard boundary via the halo
            }
            delivered += 1;
            if deliver {
                if !sink.push(gemb) {
                    client_gone = true;
                    break;
                }
            } else {
                cancel_poll += 1;
                if cancel_poll & 0xFF == 0 && sink.client_cancelled() {
                    client_gone = true;
                    break;
                }
            }
            if cap.is_some_and(|c| delivered >= c) {
                cap_hit = true;
                break;
            }
        }
        if cap_hit || client_gone {
            stream.cancel();
        }
        reports.push(stream.wait());
        si += 1;
    }
    let mut outcome = ServiceOutcome::Complete;
    let mut recursions = 0u64;
    let mut cache_hit = true;
    let mut plan_build_ns = 0u64;
    for r in &reports {
        outcome = outcome.worst(r.outcome);
        recursions += r.recursions;
        cache_hit &= r.cache_hit;
        plan_build_ns = plan_build_ns.max(r.plan_build_ns);
    }
    // Router-level overrides: an exact global cap beats the Cancelled
    // outcomes of the shards it cut short; a client abort beats both.
    if cap_hit {
        outcome = ServiceOutcome::CapHit;
        if topk {
            topk_exits.fetch_add(1, Ordering::Relaxed);
        }
    }
    if client_gone {
        outcome = ServiceOutcome::Cancelled;
    }
    stitched.fetch_add(stitched_here, Ordering::Relaxed);
    sink.finish(QueryReport {
        outcome,
        matches: delivered,
        recursions,
        cache_hit,
        plan_build_ns,
        elapsed: started.elapsed(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_graph::builder::graph_from_edges;

    fn two_triangles() -> Graph {
        // Two disjoint labeled triangles.
        graph_from_edges(
            &[0, 0, 0, 0, 0, 0],
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        )
    }

    fn triangle() -> Graph {
        graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn counts_match_across_shard_counts() {
        let expected = Service::new(two_triangles(), ServiceConfig::default())
            .run_count(triangle())
            .matches;
        for shards in [1, 2, 3] {
            let cfg = ShardConfig {
                shards,
                ..ShardConfig::default()
            };
            let svc = ShardedService::new(two_triangles(), cfg);
            let rep = svc.run_count(triangle());
            assert_eq!(rep.outcome, ServiceOutcome::Complete);
            assert_eq!(rep.matches, expected, "shards = {shards}");
        }
    }

    #[test]
    fn unsupported_queries_are_rejected() {
        let svc = ShardedService::new(two_triangles(), ShardConfig::default());
        // Disconnected.
        let disconnected = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (2, 3)]);
        assert!(!svc.supports(&disconnected));
        let rep = svc.submit(QueryRequest::count(disconnected)).wait();
        assert_eq!(rep.outcome, ServiceOutcome::Rejected);
        // Single vertex (no edges).
        let single = graph_from_edges(&[0], &[]);
        assert!(!svc.supports(&single));
        // Diameter beyond the halo.
        let path = graph_from_edges(&[0; 6], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        assert!(!svc.supports(&path), "diameter 5 > halo 3");
        assert!(svc.counters().get(Counter::QueriesRejected) >= 1);
    }

    #[test]
    fn exact_cap_across_shards() {
        let svc = ShardedService::new(
            two_triangles(),
            ShardConfig {
                shards: 2,
                ..ShardConfig::default()
            },
        );
        let rep = svc
            .submit(QueryRequest::count(triangle()).with_cap(5))
            .wait();
        assert_eq!(rep.outcome, ServiceOutcome::CapHit);
        assert_eq!(rep.matches, 5, "cap is exact across shards");
    }

    #[test]
    fn fan_out_counter_counts_shards() {
        let svc = ShardedService::new(
            two_triangles(),
            ShardConfig {
                shards: 3,
                ..ShardConfig::default()
            },
        );
        svc.run_count(triangle());
        svc.run_count(triangle());
        assert_eq!(svc.counters().get(Counter::QueriesFannedOut), 6);
    }

    #[test]
    fn streaming_delivers_global_ids() {
        let g = two_triangles();
        let svc = ShardedService::new(
            g,
            ShardConfig {
                shards: 2,
                ..ShardConfig::default()
            },
        );
        let mut embs: Vec<Vec<VertexId>> =
            svc.submit(QueryRequest::streaming(triangle())).collect();
        embs.sort_unstable();
        assert_eq!(embs.len(), 12);
        assert!(embs.iter().all(|e| e.len() == 3));
        // First triangle's automorphisms land on {0,1,2}, second on {3,4,5}.
        let mut sets: Vec<Vec<VertexId>> = embs
            .iter()
            .map(|e| {
                let mut s = e.clone();
                s.sort_unstable();
                s
            })
            .collect();
        sets.dedup();
        assert_eq!(sets, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn shard_details_cover_ownership() {
        let g = two_triangles();
        let n = g.num_vertices();
        let svc = ShardedService::new(
            g,
            ShardConfig {
                shards: 2,
                strategy: PartitionStrategy::LabelAware,
                ..ShardConfig::default()
            },
        );
        let details = svc.shard_details();
        assert_eq!(details.len(), 2);
        assert_eq!(details.iter().map(|d| d.owned).sum::<usize>(), n);
    }
}
