//! Sharded-tier telemetry tests: the tier report is the merge of its
//! shards, the router's cap enforcement shows up as drop-cancels on the
//! shards it cut short, and the shard-labeled Prometheus exposition
//! round-trips.

use sm_graph::builder::graph_from_edges;
use sm_graph::gen::random::erdos_renyi;
use sm_graph::Graph;
use sm_runtime::metrics::prom;
use sm_runtime::Counter;
use sm_service::{QueryRequest, ServiceOutcome};
use sm_shard::{ShardConfig, ShardedService};
use std::time::{Duration, Instant};

fn triangle() -> Graph {
    graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)])
}

/// Single-label graph with many triangles spread across shards.
fn busy_graph() -> Graph {
    erdos_renyi(400, 4_000, 1, 0x5EED)
}

fn tier(shards: usize) -> ShardedService {
    ShardedService::new(
        busy_graph(),
        ShardConfig {
            shards,
            halo_depth: 2,
            seed: 11,
            ..ShardConfig::default()
        },
    )
}

/// Poll `get` until it returns true or `timeout` passes — shard
/// finalization runs on worker threads and can land after the router's
/// merged report is first observable.
fn eventually(timeout: Duration, get: impl Fn() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < timeout {
        if get() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    get()
}

#[test]
fn tier_report_is_merge_of_shards() {
    let svc = tier(3);
    let n = 4;
    for _ in 0..n {
        let rep = svc.run_count(triangle());
        assert_eq!(rep.outcome, ServiceOutcome::Complete);
        assert!(rep.matches > 0);
    }
    // Every shard executed every fanned-out query.
    assert!(eventually(Duration::from_secs(5), || {
        svc.metrics_report().merged.total().count() == 3 * n
    }));
    let r = svc.metrics_report();
    assert_eq!(r.per_shard.len(), 3);
    // The merged histogram is exactly the shard histograms combined.
    let mut manual = sm_runtime::metrics::HistSnapshot::empty();
    for s in &r.per_shard {
        manual.merge(&s.total());
    }
    assert_eq!(manual.count(), r.merged.total().count());
    assert_eq!(manual.sum(), r.merged.total().sum());
    // Router-path counters fold into the merged block only.
    assert_eq!(r.merged.counters.get(Counter::QueriesFannedOut), 3 * n);
    for s in &r.per_shard {
        assert_eq!(s.counters.get(Counter::QueriesFannedOut), 0);
        assert_eq!(s.counters.get(Counter::QueriesAdmitted), n);
    }
    // The partition gauges ride along on the merged report.
    assert!(r.merged.counters.get(Counter::HaloVerticesReplicated) > 0);
}

#[test]
fn router_cap_cancel_counts_as_drop_cancel_on_shards() {
    let svc = tier(3);
    // Cap 1 on a triangle-rich graph: the gather thread stops at the
    // first owned embedding and cancels every still-running shard
    // stream — each cancelled shard service counts a drop-cancel, the
    // same counter a walked-away client would bump.
    let rep = svc
        .submit(QueryRequest::count(triangle()).with_cap(1))
        .wait();
    assert_eq!(rep.outcome, ServiceOutcome::CapHit);
    assert_eq!(rep.matches, 1, "router cap is exact");
    assert!(
        eventually(Duration::from_secs(5), || {
            svc.metrics_report()
                .merged
                .counters
                .get(Counter::QueriesCancelledByDrop)
                >= 1
        }),
        "cap-cut shard streams are counted as drop-cancels"
    );
    // The cancelled runs appear in the merged per-outcome histograms.
    let r = svc.metrics_report();
    let cancelled: u64 = r
        .merged
        .total_by_outcome
        .iter()
        .filter(|(o, _)| *o == "cancelled")
        .map(|(_, h)| h.count())
        .sum();
    assert!(cancelled >= 1);
}

#[test]
fn sharded_prometheus_exposition_round_trips() {
    let svc = tier(2);
    let n = 3;
    for _ in 0..n {
        svc.run_count(triangle());
    }
    assert!(eventually(Duration::from_secs(5), || {
        svc.metrics_report().merged.total().count() == 2 * n
    }));
    let text = svc.metrics_report().to_prometheus();
    let samples = prom::parse(&text).expect("sharded exposition parses back");
    // The merged series (no shard label) and both per-shard series
    // coexist in the same family.
    let admitted: Vec<_> = samples
        .iter()
        .filter(|s| s.name == "sm_queries_admitted")
        .collect();
    assert_eq!(admitted.len(), 3, "merged + one series per shard");
    let merged = admitted
        .iter()
        .find(|s| s.labels.is_empty())
        .expect("unlabeled merged series");
    assert_eq!(merged.value, (2 * n) as f64);
    for shard in ["0", "1"] {
        let s = admitted
            .iter()
            .find(|s| s.labels.iter().any(|(k, v)| k == "shard" && v == shard))
            .unwrap_or_else(|| panic!("shard {shard} series missing"));
        assert_eq!(s.value, n as f64);
    }
}
