//! Cross-shard correctness: for every partitioner, shard count, and an
//! automorphism-rich query zoo (cycles, cliques, stars, paths), the
//! sharded embedding set equals single-`Service` ground truth exactly
//! (sorted comparison of full embeddings, not just counts).

use sm_graph::builder::graph_from_edges;
use sm_graph::gen::rmat::{rmat_graph, RmatParams};
use sm_graph::{Graph, VertexId};
use sm_service::{QueryRequest, Service, ServiceConfig, ServiceOutcome};
use sm_shard::{PartitionStrategy, ShardConfig, ShardedService};

/// Sorted full embedding set via the single-service streaming path.
fn ground_truth(g: &Graph, q: &Graph) -> Vec<Vec<VertexId>> {
    let svc = Service::new(g.clone(), ServiceConfig::default());
    let mut out: Vec<Vec<VertexId>> = svc.submit(QueryRequest::streaming(q.clone())).collect();
    out.sort_unstable();
    out
}

/// Sorted full embedding set via the sharded scatter-gather path.
fn sharded(g: &Graph, q: &Graph, strategy: PartitionStrategy, shards: usize) -> Vec<Vec<VertexId>> {
    let svc = ShardedService::new(
        g.clone(),
        ShardConfig {
            shards,
            strategy,
            halo_depth: 3,
            seed: 7,
            ..ShardConfig::default()
        },
    );
    let mut stream = svc.submit(QueryRequest::streaming(q.clone()));
    let mut out: Vec<Vec<VertexId>> = stream.by_ref().collect();
    let report = stream.report().expect("terminal after drain");
    assert_eq!(report.outcome, ServiceOutcome::Complete);
    assert_eq!(report.matches as usize, out.len());
    out.sort_unstable();
    out
}

/// The automorphism-rich query zoo: every query is connected, has at
/// least one edge, and diameter ≤ 3.
fn query_zoo() -> Vec<(&'static str, Graph)> {
    vec![
        ("edge", graph_from_edges(&[0, 0], &[(0, 1)])),
        (
            "triangle",
            graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]),
        ),
        (
            "square",
            graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3), (3, 0)]),
        ),
        (
            "clique4",
            graph_from_edges(
                &[0, 0, 0, 0],
                &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
            ),
        ),
        (
            "star3",
            graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]),
        ),
        (
            "path3",
            graph_from_edges(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3)]),
        ),
        (
            "labeled-triangle",
            graph_from_edges(&[0, 1, 1], &[(0, 1), (1, 2), (0, 2)]),
        ),
    ]
}

fn check_all(g: &Graph, tag: &str) {
    for (name, q) in query_zoo() {
        let truth = ground_truth(g, &q);
        for strategy in [PartitionStrategy::Hash, PartitionStrategy::LabelAware] {
            for shards in [1, 2, 4] {
                let got = sharded(g, &q, strategy, shards);
                assert_eq!(
                    got,
                    truth,
                    "{tag}/{name}: {strategy:?} x {shards} shards diverged \
                     (got {} embeddings, expected {})",
                    got.len(),
                    truth.len()
                );
            }
        }
    }
}

#[test]
fn rmat_dense_labels() {
    // Few labels → many automorphic embeddings crossing shard borders.
    let g = rmat_graph(220, 6.0, 2, RmatParams::PAPER, 13);
    check_all(&g, "rmat-2lab");
}

#[test]
fn rmat_more_labels() {
    let g = rmat_graph(300, 5.0, 4, RmatParams::PAPER, 29);
    check_all(&g, "rmat-4lab");
}

#[test]
fn handcrafted_boundary_graph() {
    // A ladder: every rung is a potential shard boundary, so square
    // embeddings routinely straddle two shards and must be stitched
    // through the halo.
    let n = 20;
    let mut labels = Vec::new();
    let mut edges = Vec::new();
    for i in 0..n {
        labels.push(0);
        labels.push(0);
        let (a, b) = (2 * i as VertexId, 2 * i as VertexId + 1);
        edges.push((a, b));
        if i + 1 < n {
            edges.push((a, a + 2));
            edges.push((b, b + 2));
        }
    }
    let g = graph_from_edges(&labels, &edges);
    check_all(&g, "ladder");
}

#[test]
fn counts_agree_between_count_and_streaming_paths() {
    let g = rmat_graph(200, 5.0, 3, RmatParams::PAPER, 5);
    let tri = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
    let truth = ground_truth(&g, &tri).len() as u64;
    let svc = ShardedService::new(
        g,
        ShardConfig {
            shards: 4,
            strategy: PartitionStrategy::LabelAware,
            ..ShardConfig::default()
        },
    );
    let rep = svc.run_count(tri);
    assert_eq!(rep.outcome, ServiceOutcome::Complete);
    assert_eq!(rep.matches, truth, "count-only path agrees with streaming");
}
