//! Sharded [`MatchSemantics`]: count-only pushdown and relaxed
//! injectivity agree with a single-`Service` oracle at 1/2/4 shards,
//! top-k is exact through the cross-shard cap machinery, sample-k is
//! rejected at the router, and standing registration refuses relaxed
//! semantics.

use sm_graph::builder::graph_from_edges;
use sm_graph::gen::rmat::{rmat_graph, RmatParams};
use sm_graph::Graph;
use sm_match::{Injectivity, MatchSemantics};
use sm_service::{QueryRequest, Service, ServiceConfig, ServiceOutcome, StandingError};
use sm_shard::{PartitionStrategy, ShardConfig, ShardedService};

fn data_graph() -> Graph {
    rmat_graph(300, 6.0, 3, RmatParams::PAPER, 0xABCDE)
}

fn sharded_service(g: &Graph, shards: usize) -> ShardedService {
    ShardedService::new(
        g.clone(),
        ShardConfig {
            shards,
            strategy: PartitionStrategy::Hash,
            halo_depth: 3,
            seed: 7,
            ..ShardConfig::default()
        },
    )
}

fn mode(inj: Injectivity) -> MatchSemantics {
    MatchSemantics {
        injectivity: inj,
        ..MatchSemantics::default().count_only()
    }
}

fn queries() -> Vec<(&'static str, Graph)> {
    vec![
        ("edge", graph_from_edges(&[0, 1], &[(0, 1)])),
        (
            "triangle",
            graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]),
        ),
        ("path3", graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2)])),
    ]
}

#[test]
fn count_only_pushdown_matches_single_service_at_every_shard_count() {
    let g = data_graph();
    let single = Service::new(g.clone(), ServiceConfig::default());
    for (name, q) in queries() {
        for inj in [
            Injectivity::Isomorphism,
            Injectivity::EdgeInjective,
            Injectivity::Homomorphism,
        ] {
            let truth = single
                .submit(QueryRequest::count(q.clone()).with_semantics(mode(inj)))
                .wait();
            assert_eq!(truth.outcome, ServiceOutcome::Complete);
            for shards in [1, 2, 4] {
                let svc = sharded_service(&g, shards);
                let r = svc
                    .submit(QueryRequest::count(q.clone()).with_semantics(mode(inj)))
                    .wait();
                assert_eq!(r.outcome, ServiceOutcome::Complete);
                assert_eq!(
                    r.matches, truth.matches,
                    "{name}: {inj:?} count diverged at {shards} shards"
                );
            }
        }
    }
}

#[test]
fn capped_counts_take_the_gather_path_and_stay_exact() {
    let g = data_graph();
    let q = graph_from_edges(&[0, 1], &[(0, 1)]);
    let single = Service::new(g.clone(), ServiceConfig::default());
    let total = single.submit(QueryRequest::count(q.clone())).wait().matches;
    assert!(total > 8, "fixture needs enough matches to cap");

    for shards in [2, 4] {
        let svc = sharded_service(&g, shards);
        // A cap forces the materializing gather path even for count-only
        // requests; the cap must stay exact across shards.
        let r = svc
            .submit(QueryRequest::count(q.clone()).with_cap(total / 2))
            .wait();
        assert_eq!(r.outcome, ServiceOutcome::CapHit);
        assert_eq!(r.matches, total / 2);
    }
}

#[test]
fn top_k_across_shards_is_exact() {
    let g = data_graph();
    let q = graph_from_edges(&[0, 1], &[(0, 1)]);
    let single = Service::new(g.clone(), ServiceConfig::default());
    let total = single.submit(QueryRequest::count(q.clone())).wait().matches;
    let k = (total / 3).max(1);

    for shards in [1, 2, 4] {
        let svc = sharded_service(&g, shards);
        let mut stream = svc.submit(
            QueryRequest::streaming(q.clone()).with_semantics(MatchSemantics::default().top_k(k)),
        );
        let got: Vec<_> = stream.by_ref().collect();
        let report = stream.report().expect("terminal after drain");
        assert_eq!(report.outcome, ServiceOutcome::CapHit);
        assert_eq!(report.matches, k, "top-k drifted at {shards} shards");
        assert_eq!(got.len() as u64, k);
    }
}

#[test]
fn sample_k_is_rejected_at_the_router() {
    let g = data_graph();
    let q = graph_from_edges(&[0, 1], &[(0, 1)]);
    let svc = sharded_service(&g, 2);
    let r = svc
        .submit(QueryRequest::count(q).with_semantics(MatchSemantics::default().sample_k(3, 9)))
        .wait();
    assert_eq!(r.outcome, ServiceOutcome::Rejected);
    assert_eq!(r.matches, 0);
}

#[test]
fn standing_registration_refuses_relaxed_semantics() {
    let g = data_graph();
    let q = graph_from_edges(&[0, 1], &[(0, 1)]);
    let svc = sharded_service(&g, 2);
    assert!(matches!(
        svc.register_standing_with(&q, mode(Injectivity::EdgeInjective)),
        Err(StandingError::UnsupportedSemantics)
    ));
    assert!(svc
        .register_standing_with(&q, MatchSemantics::default())
        .is_ok());
}
