//! Update-path guarantees of the sharded tier:
//!
//! 1. **No torn epochs** — a query racing `apply_update` sees every
//!    shard pre-update or every shard post-update, never a mix. The
//!    probe: a batch that completes (or breaks) one triangle in *each*
//!    of two regions atomically; a torn scatter would observe exactly
//!    one of them.
//! 2. **Standing queries stay exactly-once correct** after cross-shard
//!    edge insertions and deletions: the merged sharded standing set
//!    equals the single-service standing set after every batch of a
//!    seeded update stream.

use sm_delta::{UpdateBatch, UpdateStream, UpdateStreamSpec};
use sm_graph::builder::graph_from_edges;
use sm_graph::gen::rmat::{rmat_graph, RmatParams};
use sm_graph::Graph;
use sm_service::{Service, ServiceConfig, ServiceOutcome};
use sm_shard::{PartitionStrategy, ShardConfig, ShardedService};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

fn triangle() -> Graph {
    graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)])
}

#[test]
fn concurrent_queries_never_observe_a_torn_epoch() {
    // Two open triangles far apart; one batch closes both, the next
    // reopens both. Atomic commits mean a counter sees 0 or 12 (two
    // triangles x 6 automorphic mappings), never 6.
    let g = graph_from_edges(&[0; 6], &[(0, 1), (1, 2), (3, 4), (4, 5)]);
    let svc = Arc::new(ShardedService::new(
        g,
        ShardConfig {
            shards: 2,
            strategy: PartitionStrategy::Hash,
            halo_depth: 2,
            ..ShardConfig::default()
        },
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let progress: Arc<Vec<AtomicU64>> = Arc::new((0..2).map(|_| AtomicU64::new(0)).collect());
    let probes: Vec<_> = (0..2)
        .map(|i| {
            let svc = svc.clone();
            let stop = stop.clone();
            let progress = progress.clone();
            thread::spawn(move || {
                let mut seen = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let rep = svc.run_count(triangle());
                    assert_eq!(rep.outcome, ServiceOutcome::Complete);
                    seen.push(rep.matches);
                    progress[i].fetch_add(1, Ordering::Relaxed);
                }
                seen
            })
        })
        .collect();
    let close = UpdateBatch::new().add_edge(0, 2).add_edge(3, 5);
    let open = UpdateBatch::new().delete_edge(0, 2).delete_edge(3, 5);
    let mut epoch = svc.epoch();
    for round in 0..15 {
        let rep = if round % 2 == 0 {
            svc.apply_update(&close)
        } else {
            svc.apply_update(&open)
        };
        assert!(!rep.noop);
        epoch += 1;
        assert_eq!(rep.epoch, epoch, "one coherent epoch per effective update");
    }
    // Don't stop until every probe has raced at least a few updates —
    // under heavy test-suite load a probe may not have been scheduled
    // yet when the 15 toggles finish.
    while progress.iter().any(|p| p.load(Ordering::Relaxed) < 3) {
        thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for p in probes {
        let seen = p.join().expect("probe thread");
        assert!(!seen.is_empty());
        for count in seen {
            assert!(
                count == 0 || count == 12,
                "torn epoch observed: {count} matches (both triangles must \
                 appear or disappear together)"
            );
        }
    }
}

#[test]
fn noop_batches_keep_the_epoch() {
    let g = graph_from_edges(&[0; 4], &[(0, 1), (2, 3)]);
    let svc = ShardedService::new(g, ShardConfig::default());
    let before = svc.epoch();
    // Inserting a present edge normalizes to nothing.
    let rep = svc.apply_update(&UpdateBatch::new().add_edge(0, 1));
    assert!(rep.noop);
    assert_eq!(rep.epoch, before);
    assert_eq!(svc.epoch(), before);
}

/// Apply the same seeded update stream to a single service and the
/// sharded tier; after every batch the standing sets and live counts
/// must agree embedding-for-embedding.
fn standing_agreement(strategy: PartitionStrategy, shards: usize, seed: u64) {
    let g = rmat_graph(140, 5.0, 2, RmatParams::PAPER, seed);
    let single = Service::new(g.clone(), ServiceConfig::default());
    let sharded = ShardedService::new(
        g,
        ShardConfig {
            shards,
            strategy,
            halo_depth: 3,
            seed,
            ..ShardConfig::default()
        },
    );
    let tri = triangle();
    let edge = graph_from_edges(&[0, 0], &[(0, 1)]);
    let s_tri = single.register_standing(&tri).expect("single supports");
    let s_edge = single.register_standing(&edge).expect("single supports");
    let h_tri = sharded.register_standing(&tri).expect("sharded supports");
    let h_edge = sharded.register_standing(&edge).expect("sharded supports");
    assert_eq!(
        single.standing_matches(s_tri),
        sharded.standing_matches(h_tri),
        "initial standing sets agree"
    );
    let mut stream = UpdateStream::new(
        UpdateStreamSpec {
            batch_size: 24,
            insert_ratio: 0.5,
            vertex_add_ratio: 0.15,
            num_labels: 2,
        },
        seed ^ 0xD1CE,
    );
    for step in 0..8 {
        let batch = stream.next_batch(&sharded.snapshot());
        let srep = single.apply_update(&batch);
        let hrep = sharded.apply_update(&batch);
        assert_eq!(srep.noop, hrep.noop, "step {step}");
        assert_eq!(
            single.standing_matches(s_tri),
            sharded.standing_matches(h_tri),
            "step {step}: standing triangles diverged ({strategy:?} x {shards})"
        );
        assert_eq!(
            single.standing_matches(s_edge),
            sharded.standing_matches(h_edge),
            "step {step}: standing edges diverged ({strategy:?} x {shards})"
        );
        // Live query path agrees too.
        assert_eq!(
            single.run_count(tri.clone()).matches,
            sharded.run_count(tri.clone()).matches,
            "step {step}: live counts diverged"
        );
    }
}

#[test]
fn standing_queries_stay_exact_hash_2() {
    standing_agreement(PartitionStrategy::Hash, 2, 11);
}

#[test]
fn standing_queries_stay_exact_hash_4() {
    standing_agreement(PartitionStrategy::Hash, 4, 23);
}

#[test]
fn standing_queries_stay_exact_label_aware_3() {
    standing_agreement(PartitionStrategy::LabelAware, 3, 37);
}

#[test]
fn cross_shard_vertex_churn_routes_correctly() {
    // Hand-driven churn: add vertices, wire them across the partition
    // border, delete them again — the single service stays the oracle.
    let g = rmat_graph(80, 4.0, 2, RmatParams::PAPER, 3);
    let n0 = g.num_vertices() as u32;
    let single = Service::new(g.clone(), ServiceConfig::default());
    let sharded = ShardedService::new(
        g,
        ShardConfig {
            shards: 3,
            strategy: PartitionStrategy::LabelAware,
            halo_depth: 3,
            ..ShardConfig::default()
        },
    );
    let tri = triangle();
    // New vertices n0 and n0+1 (labels 0, 0) wired to existing hubs and
    // to each other: a triangle spanning old and new vertices.
    let wire = UpdateBatch::new()
        .add_vertex(0)
        .add_vertex(0)
        .add_edge(n0, n0 + 1)
        .add_edge(n0, 0)
        .add_edge(n0 + 1, 0)
        .add_edge(n0, 1)
        .add_edge(n0 + 1, 2);
    let s = single.apply_update(&wire);
    let h = sharded.apply_update(&wire);
    assert_eq!(s.vertices_added, 2);
    assert_eq!(h.vertices_added, 2);
    assert_eq!(
        single.run_count(tri.clone()).matches,
        sharded.run_count(tri.clone()).matches,
        "after wiring new vertices across shards"
    );
    // Tombstone one of them (drops its edges everywhere, including
    // halo replicas on non-owner shards).
    let unwire = UpdateBatch::new().delete_vertex(n0);
    single.apply_update(&unwire);
    sharded.apply_update(&unwire);
    assert_eq!(
        single.run_count(tri.clone()).matches,
        sharded.run_count(tri).matches,
        "after tombstoning a cross-shard vertex"
    );
}
