//! Kill-and-recover equivalence for the sharded tier, at 1 and 4
//! shards: a recovered [`ShardedService`] must produce byte-identical
//! sorted embedding sets and standing sets to an uninterrupted
//! in-memory twin — durability rides the router's single global commit
//! point, so shard count is free to change across restarts.

use sm_delta::{UpdateBatch, UpdateStream, UpdateStreamSpec};
use sm_durable::{DurabilityOptions, FsyncPolicy};
use sm_graph::builder::graph_from_edges;
use sm_graph::gen::rmat::{rmat_graph, RmatParams};
use sm_graph::{Graph, VertexId};
use sm_runtime::trace::Counter;
use sm_service::QueryRequest;
use sm_shard::{ShardConfig, ShardedService};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "sm-shard-durable-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn base_graph() -> Graph {
    rmat_graph(120, 4.0, 3, RmatParams::PAPER, 29)
}

fn edge_query() -> Graph {
    graph_from_edges(&[0, 0], &[(0, 1)])
}

fn wedge_query() -> Graph {
    graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2)])
}

fn opts() -> DurabilityOptions {
    DurabilityOptions {
        fsync: FsyncPolicy::Off,
        snapshot_threshold_bytes: 0,
        ..Default::default()
    }
}

fn shard_cfg(shards: usize) -> ShardConfig {
    ShardConfig {
        shards,
        ..ShardConfig::default()
    }
}

fn sorted_embeddings(svc: &ShardedService, q: &Graph) -> Vec<Vec<VertexId>> {
    let mut m: Vec<Vec<VertexId>> = svc.submit(QueryRequest::streaming(q.clone())).collect();
    m.sort_unstable();
    m
}

/// Generate batches against the twin's evolving global graph, applying
/// each to the twin as it is produced.
fn drive(twin: &ShardedService, n: usize, seed: u64) -> Vec<UpdateBatch> {
    let mut stream = UpdateStream::new(
        UpdateStreamSpec {
            batch_size: 6,
            ..Default::default()
        },
        seed,
    );
    (0..n)
        .map(|_| {
            let b = stream.next_batch(&twin.snapshot());
            twin.apply_update(&b);
            b
        })
        .collect()
}

fn kill_and_recover_at(shards: usize) {
    let dir = tmp_dir(&format!("shards-{shards}"));
    let twin = ShardedService::new(base_graph(), shard_cfg(shards));
    let durable =
        ShardedService::new_durable(base_graph(), shard_cfg(shards), &dir, opts()).unwrap();
    assert!(durable.is_durable() && !twin.is_durable());

    let head = drive(&twin, 6, 41);
    let sid_twin = twin.register_standing(&wedge_query()).unwrap();
    let tail = drive(&twin, 6, 42);

    for b in &head {
        durable.apply_update(b);
    }
    let sid = durable.register_standing(&wedge_query()).unwrap();
    for b in &tail {
        durable.apply_update(b);
    }
    let expect_epoch = durable.epoch();
    assert!(expect_epoch > 0, "stream produced effective batches");
    drop(durable); // kill

    let recovered = ShardedService::open(&dir, shard_cfg(shards), opts()).unwrap();
    assert_eq!(recovered.epoch(), twin.epoch());
    assert_eq!(recovered.epoch(), expect_epoch);
    for q in [edge_query(), wedge_query()] {
        assert_eq!(
            sorted_embeddings(&recovered, &q),
            sorted_embeddings(&twin, &q),
            "query embedding sets at {shards} shard(s)"
        );
    }
    assert_eq!(
        recovered.standing_matches(sid),
        twin.standing_matches(sid_twin),
        "standing sets at {shards} shard(s)"
    );
    let report = recovered.recovery_report().unwrap();
    assert_eq!(report.replayed_batches, expect_epoch);
    assert_eq!(report.replayed_registrations, 1);
    let c = recovered.counters();
    assert_eq!(c.get(Counter::Recoveries), 1);
    assert_eq!(c.get(Counter::ReplayedBatches), expect_epoch);
}

#[test]
fn kill_and_recover_matches_twin_at_one_shard() {
    kill_and_recover_at(1);
}

#[test]
fn kill_and_recover_matches_twin_at_four_shards() {
    kill_and_recover_at(4);
}

/// The shard layout is not part of the durable state: a tier crashed at
/// 4 shards reopens at 2 with identical results.
#[test]
fn reopen_under_different_shard_count() {
    let dir = tmp_dir("relayout");
    let twin = ShardedService::new(base_graph(), shard_cfg(2));
    let durable = ShardedService::new_durable(base_graph(), shard_cfg(4), &dir, opts()).unwrap();
    for b in drive(&twin, 8, 77) {
        durable.apply_update(&b);
    }
    drop(durable);
    let recovered = ShardedService::open(&dir, shard_cfg(2), opts()).unwrap();
    assert_eq!(recovered.num_shards(), 2);
    assert_eq!(recovered.epoch(), twin.epoch());
    assert_eq!(
        sorted_embeddings(&recovered, &wedge_query()),
        sorted_embeddings(&twin, &wedge_query())
    );
}

/// Threshold compaction at the router: snapshots absorb the log, and
/// recovery replays nothing.
#[test]
fn threshold_snapshot_compacts_router_wal() {
    let dir = tmp_dir("threshold");
    let o = DurabilityOptions {
        fsync: FsyncPolicy::Off,
        snapshot_threshold_bytes: 1,
        ..Default::default()
    };
    let twin = ShardedService::new(base_graph(), shard_cfg(2));
    let durable = ShardedService::new_durable(base_graph(), shard_cfg(2), &dir, o).unwrap();
    durable.register_standing(&wedge_query()).unwrap();
    twin.register_standing(&wedge_query()).unwrap();
    for b in drive(&twin, 5, 13) {
        durable.apply_update(&b);
    }
    assert!(durable.counters().get(Counter::SnapshotsWritten) > 1);
    drop(durable);
    let recovered = ShardedService::open(&dir, shard_cfg(2), o).unwrap();
    let report = recovered.recovery_report().unwrap();
    assert_eq!(report.replayed_batches, 0);
    assert_eq!(report.snapshot_epoch, recovered.epoch());
    assert_eq!(
        sorted_embeddings(&recovered, &edge_query()),
        sorted_embeddings(&twin, &edge_query())
    );
    assert!(recovered.snapshot_now().unwrap());
}
