//! Seeded property suites for the durable formats: WAL record codec
//! round-trips (arbitrary multi-op batches, tombstoned vertices,
//! standing-query graphs), snapshot write/read CSR equality, and the
//! WAL scanner's longest-intact-prefix guarantee under truncation and
//! corruption of the final record.

use sm_delta::UpdateBatch;
use sm_durable::wal::{encode_record, WalWriter};
use sm_durable::{
    crc32, read_snapshot, scan_wal, write_snapshot, FsyncPolicy, SnapshotData, StandingSnapshot,
    WalRecord,
};
use sm_graph::gen::rmat::{rmat_graph, RmatParams};
use sm_graph::{Graph, Label, VertexId};
use sm_runtime::check::Check;
use sm_runtime::{ensure, ensure_eq, Rng64};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fresh per-case temp directory (cases run sequentially but each gets
/// its own directory so a failure leaves its evidence behind).
fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "sm-durable-props-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create temp dir");
    d
}

/// A random multi-op batch: vertex adds, vertex deletes (tombstones),
/// edge inserts and edge deletes, interleaved.
fn gen_batch(rng: &mut Rng64, size: u32) -> UpdateBatch {
    let ops = rng.gen_range(0..size as usize + 2);
    let mut b = UpdateBatch::new();
    for _ in 0..ops {
        match rng.next_u64_below(4) {
            0 => b = b.add_vertex(rng.next_u64_below(16) as Label),
            1 => b = b.delete_vertex(rng.next_u64_below(256) as VertexId),
            2 => {
                b = b.add_edge(
                    rng.next_u64_below(256) as VertexId,
                    rng.next_u64_below(256) as VertexId,
                )
            }
            _ => {
                b = b.delete_edge(
                    rng.next_u64_below(256) as VertexId,
                    rng.next_u64_below(256) as VertexId,
                )
            }
        }
    }
    b
}

fn gen_graph(rng: &mut Rng64, size: u32) -> Graph {
    let n = 4 + rng.gen_range(0..size as usize + 4);
    rmat_graph(n, 3.0, 4, RmatParams::PAPER, rng.next_u64())
}

fn batches_equal(a: &UpdateBatch, b: &UpdateBatch) -> Result<(), String> {
    ensure_eq!(a.add_vertices, b.add_vertices);
    ensure_eq!(a.delete_vertices, b.delete_vertices);
    ensure_eq!(a.add_edges, b.add_edges);
    ensure_eq!(a.delete_edges, b.delete_edges);
    Ok(())
}

fn graphs_equal(a: &Graph, b: &Graph) -> Result<(), String> {
    let (ao, an, al) = a.csr();
    let (bo, bn, bl) = b.csr();
    ensure_eq!(ao, bo, "offsets differ");
    ensure_eq!(an, bn, "adjacency differs");
    ensure_eq!(al, bl, "labels differ");
    Ok(())
}

fn records_equal(a: &WalRecord, b: &WalRecord) -> Result<(), String> {
    match (a, b) {
        (
            WalRecord::Batch {
                epoch: ea,
                batch: ba,
            },
            WalRecord::Batch {
                epoch: eb,
                batch: bb,
            },
        ) => {
            ensure_eq!(ea, eb);
            batches_equal(ba, bb)
        }
        (
            WalRecord::Standing {
                index: ia,
                query: qa,
            },
            WalRecord::Standing {
                index: ib,
                query: qb,
            },
        ) => {
            ensure_eq!(ia, ib);
            graphs_equal(qa, qb)
        }
        _ => Err("record kinds differ".into()),
    }
}

/// Decode one framed record from `buf`, mirroring the scanner's frame
/// checks; returns the record and the framed length.
fn decode_framed(buf: &[u8]) -> Result<(WalRecord, usize), String> {
    ensure!(buf.len() >= 8, "frame header short");
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    ensure!(buf.len() >= 8 + len, "payload short");
    let payload = &buf[8..8 + len];
    ensure_eq!(crc32(payload), crc, "payload checksum");
    let rec = sm_durable::wal::decode_payload(payload).map_err(|e| e.to_string())?;
    Ok((rec, 8 + len))
}

#[test]
fn wal_record_codec_round_trips() {
    Check::new("wal_record_codec_round_trips")
        .cases(48)
        .max_size(64)
        .run(
            |rng, size| {
                if rng.gen_bool(0.7) {
                    WalRecord::Batch {
                        epoch: rng.next_u64(),
                        batch: gen_batch(rng, size),
                    }
                } else {
                    WalRecord::Standing {
                        index: rng.next_u64_below(1 << 32),
                        query: gen_graph(rng, size.min(8)),
                    }
                }
            },
            |rec| {
                let framed = encode_record(rec);
                let (decoded, used) = decode_framed(&framed)?;
                ensure_eq!(used, framed.len(), "no trailing bytes in frame");
                records_equal(rec, &decoded)
            },
        );
}

#[test]
fn snapshot_write_read_csr_equality() {
    Check::new("snapshot_write_read_csr_equality")
        .cases(24)
        .max_size(48)
        .run(
            |rng, size| {
                let graph = gen_graph(rng, size);
                let nlf = graph.build_nlf();
                // Standing sets with arbitrary arity and contents — the
                // snapshot stores them verbatim.
                let standing = (0..rng.gen_range(0..3usize))
                    .map(|_| {
                        let query = gen_graph(rng, 4);
                        let arity = query.num_vertices();
                        let rows = rng.gen_range(0..5usize);
                        let matches = (0..rows)
                            .map(|_| {
                                (0..arity)
                                    .map(|_| rng.next_u64_below(1 << 20) as VertexId)
                                    .collect()
                            })
                            .collect();
                        StandingSnapshot { query, matches }
                    })
                    .collect();
                let label_pairs = sm_graph::label_index::LabelPairEdgeCounts::build(&graph);
                SnapshotData {
                    epoch: rng.next_u64_below(1 << 40),
                    graph,
                    nlf,
                    label_pairs,
                    standing,
                }
            },
            |data| {
                let dir = tmp_dir("snap");
                let (path, _) = write_snapshot(&dir, data).map_err(|e| e.to_string())?;
                let back = read_snapshot(&path).map_err(|e| e.to_string())?;
                ensure_eq!(back.epoch, data.epoch);
                graphs_equal(&back.graph, &data.graph)?;
                for v in 0..data.graph.num_vertices() as VertexId {
                    ensure_eq!(back.nlf.entry(v), data.nlf.entry(v), "NLF row {v}");
                }
                ensure_eq!(
                    back.label_pairs.sorted_pairs(),
                    data.label_pairs.sorted_pairs()
                );
                ensure_eq!(back.standing.len(), data.standing.len());
                for (a, b) in back.standing.iter().zip(&data.standing) {
                    graphs_equal(&a.query, &b.query)?;
                    ensure_eq!(a.matches, b.matches);
                }
                std::fs::remove_dir_all(&dir).ok();
                Ok(())
            },
        );
}

#[test]
fn wal_scan_keeps_longest_intact_prefix() {
    Check::new("wal_scan_keeps_longest_intact_prefix")
        .cases(24)
        .max_size(32)
        .run(
            |rng, size| {
                let records: Vec<WalRecord> = (0..2 + rng.gen_range(0..size as usize + 1))
                    .map(|i| WalRecord::Batch {
                        epoch: i as u64 + 1,
                        batch: gen_batch(rng, size.min(12)),
                    })
                    .collect();
                // Where inside the final record to cut, and whether to
                // truncate or corrupt a byte there instead.
                (records, rng.next_u64(), rng.gen_bool(0.5))
            },
            |(records, cut_seed, corrupt)| {
                let dir = tmp_dir("scan");
                let mut w = WalWriter::create(&dir, FsyncPolicy::Off, u64::MAX, 0)
                    .map_err(|e| e.to_string())?;
                for r in records {
                    w.append(r).map_err(|e| e.to_string())?;
                }
                w.sync().map_err(|e| e.to_string())?;
                let seg = dir.join(format!("wal-{:016x}.seg", 0));
                let bytes = std::fs::read(&seg).map_err(|e| e.to_string())?;
                let last_len = encode_record(records.last().unwrap()).len();
                let last_start = bytes.len() - last_len;
                // Damage the final record: truncate inside it, or flip
                // one of its bytes.
                let offset = last_start + (*cut_seed as usize % last_len);
                let mut damaged = bytes.clone();
                if *corrupt {
                    damaged[offset] ^= 0x41;
                } else {
                    damaged.truncate(offset);
                }
                std::fs::write(&seg, &damaged).map_err(|e| e.to_string())?;
                let scan = scan_wal(&dir).map_err(|e| e.to_string())?;
                ensure_eq!(
                    scan.records.len(),
                    records.len() - 1,
                    "exactly the intact prefix survives"
                );
                for (a, b) in scan.records.iter().zip(records) {
                    records_equal(a, b)?;
                }
                ensure_eq!(scan.dropped_bytes, (damaged.len() - last_start) as u64);
                std::fs::remove_dir_all(&dir).ok();
                Ok(())
            },
        );
}
