//! The append-only write-ahead log.
//!
//! A WAL is a directory of segment files `wal-<seq>.seg`, each a run of
//! framed records:
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! payload = [kind: u8] body
//!   kind 0 (batch):    [epoch: u64] [UpdateBatch codec]
//!   kind 1 (standing): [index: u64] [query-graph codec]
//! ```
//!
//! Batch records are stamped with the *service* epoch their commit
//! installs; standing records with their index in the service's
//! append-only standing vector. Both stamps exist so recovery can filter
//! the log against the snapshot it starts from (replay exactly the
//! records the snapshot has not absorbed) without the writer ever
//! needing to truncate the log at snapshot time.
//!
//! The reader accepts the longest prefix of fully-written records and
//! drops everything from the first short, oversized, checksum-failing,
//! or undecodable record onward — a torn final record from a crash
//! mid-append is tolerated by construction, and the dropped byte count
//! is reported so recovery can say what it discarded.
//! [`truncate_torn_tail`] then removes the dropped bytes from disk, so
//! a later scan never stops at stale torn bytes and discards records
//! appended after the recovery that skipped them.

use crate::codec::{
    crc32, decode_batch, decode_graph, encode_batch, encode_graph, CodecError, Dec, Enc,
};
use sm_delta::UpdateBatch;
use sm_graph::Graph;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// When `fsync` runs relative to WAL appends — the durability/latency
/// knob of the group-commit policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record: no committed batch is ever
    /// lost, at one disk sync per update.
    PerBatch,
    /// `fsync` at most once per interval: batches inside the window ride
    /// the next sync (group commit); a crash can lose up to one window.
    Interval(Duration),
    /// Never `fsync` explicitly; the OS flushes on its own schedule.
    /// Fastest, loses the OS write-back window on power failure.
    Off,
}

/// One logical WAL record.
#[derive(Clone, Debug)]
pub enum WalRecord {
    /// An effective update batch, stamped with the service epoch its
    /// commit installs.
    Batch {
        /// The tier epoch the replayed commit must land on.
        epoch: u64,
        /// The client batch as submitted (pre-normalization; replaying it
        /// against the same pre-state normalizes identically).
        batch: UpdateBatch,
    },
    /// A standing-query registration, stamped with its index in the
    /// tier's append-only standing vector.
    Standing {
        /// Position in the standing vector — the stable identity of the
        /// registration (standing ids are never reused).
        index: u64,
        /// The registered query graph.
        query: Graph,
    },
}

const KIND_BATCH: u8 = 0;
const KIND_STANDING: u8 = 1;

/// Frame a record: `[len][crc][payload]`, ready to append.
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut payload = Enc::new();
    match rec {
        WalRecord::Batch { epoch, batch } => {
            payload.put_u8(KIND_BATCH);
            payload.put_u64(*epoch);
            encode_batch(batch, &mut payload);
        }
        WalRecord::Standing { index, query } => {
            payload.put_u8(KIND_STANDING);
            payload.put_u64(*index);
            encode_graph(query, &mut payload);
        }
    }
    let payload = payload.into_bytes();
    let mut framed = Enc::new();
    framed.put_u32(payload.len() as u32);
    framed.put_u32(crc32(&payload));
    framed.put_bytes(&payload);
    framed.into_bytes()
}

/// Decode one record payload (the bytes after the `[len][crc]` frame).
pub fn decode_payload(payload: &[u8]) -> Result<WalRecord, CodecError> {
    let mut dec = Dec::new(payload);
    let rec = match dec.get_u8()? {
        KIND_BATCH => WalRecord::Batch {
            epoch: dec.get_u64()?,
            batch: decode_batch(&mut dec)?,
        },
        KIND_STANDING => WalRecord::Standing {
            index: dec.get_u64()?,
            query: decode_graph(&mut dec)?,
        },
        _ => return Err(CodecError::Invalid("unknown record kind")),
    };
    if !dec.finished() {
        return Err(CodecError::Invalid("trailing bytes in record"));
    }
    Ok(rec)
}

/// Path of segment `seq` under `dir`.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:016x}.seg"))
}

/// Segment files under `dir`, as `(seq, path)` sorted ascending by seq.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(hex) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".seg"))
        {
            if let Ok(seq) = u64::from_str_radix(hex, 16) {
                out.push((seq, path));
            }
        }
    }
    out.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(out)
}

/// Where a scan stopped on a torn/corrupt record: the segment holding
/// it and how many bytes of intact records precede it there. Everything
/// from this point on (including later segments) was dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TornTail {
    /// Seq of the segment the first bad record lives in.
    pub seq: u64,
    /// Byte offset of the end of the last intact record in that segment.
    pub valid_bytes: u64,
}

/// The outcome of scanning a WAL directory: the longest prefix of fully
/// committed records, plus what was discarded after it.
pub struct WalScan {
    /// Fully-written records, in append order across segments.
    pub records: Vec<WalRecord>,
    /// Bytes dropped from the first torn/corrupt record onward.
    pub dropped_bytes: u64,
    /// Segment seqs present, ascending.
    pub segments: Vec<u64>,
    /// Where scanning stopped, if a torn/corrupt record was hit.
    pub torn: Option<TornTail>,
}

/// Read every segment under `dir` in seq order and return the longest
/// prefix of intact records. Scanning stops at the first record whose
/// frame is short, whose length overruns the segment, whose checksum
/// fails, or whose payload does not decode; that record and everything
/// after it (including later segments) count as dropped bytes.
pub fn scan_wal(dir: &Path) -> io::Result<WalScan> {
    let segments = list_segments(dir)?;
    let mut scan = WalScan {
        records: Vec::new(),
        dropped_bytes: 0,
        segments: segments.iter().map(|&(seq, _)| seq).collect(),
        torn: None,
    };
    let mut stopped = false;
    for &(seq, ref path) in &segments {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        if stopped {
            scan.dropped_bytes += bytes.len() as u64;
            continue;
        }
        let mut pos = 0usize;
        while pos < bytes.len() {
            let intact = (|| {
                if bytes.len() - pos < 8 {
                    return None;
                }
                let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
                let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
                let payload = bytes.get(pos + 8..pos + 8 + len)?;
                if crc32(payload) != crc {
                    return None;
                }
                decode_payload(payload).ok().map(|rec| (rec, 8 + len))
            })();
            match intact {
                Some((rec, consumed)) => {
                    scan.records.push(rec);
                    pos += consumed;
                }
                None => {
                    scan.dropped_bytes += (bytes.len() - pos) as u64;
                    scan.torn = Some(TornTail {
                        seq,
                        valid_bytes: pos as u64,
                    });
                    stopped = true;
                    break;
                }
            }
        }
    }
    Ok(scan)
}

/// `fsync` the directory itself, making renames, file creations, and
/// unlinks inside it durable. A no-op where directories cannot be
/// opened as files.
pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    File::open(dir)?.sync_all()?;
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// Remove the bytes a scan dropped from disk: truncate the torn segment
/// at its last intact record and delete every segment after it, then
/// `fsync` the directory. Without this, the torn bytes sit below any
/// segment recovery appends into, and the *next* scan stops at them
/// again — silently discarding records durably committed after the
/// crash. A scan with no torn tail is a no-op.
pub fn truncate_torn_tail(dir: &Path, scan: &WalScan) -> io::Result<()> {
    let Some(torn) = scan.torn else {
        return Ok(());
    };
    let file = OpenOptions::new()
        .write(true)
        .open(segment_path(dir, torn.seq))?;
    file.set_len(torn.valid_bytes)?;
    file.sync_all()?;
    for (seq, path) in list_segments(dir)? {
        if seq > torn.seq {
            fs::remove_file(path)?;
        }
    }
    sync_dir(dir)
}

/// The appending half of the WAL: writes framed records to the current
/// segment, syncs per [`FsyncPolicy`], rotates segments at a size bound.
pub struct WalWriter {
    dir: PathBuf,
    policy: FsyncPolicy,
    segment_bytes: u64,
    file: File,
    seq: u64,
    current_bytes: u64,
    last_sync: Instant,
    dirty: bool,
    appends: u64,
    bytes: u64,
}

impl WalWriter {
    /// Open a brand-new segment numbered `seq` under `dir` (the caller
    /// picks a seq above every existing segment). Fails if the segment
    /// file already exists — seqs are never reused.
    pub fn create(
        dir: &Path,
        policy: FsyncPolicy,
        segment_bytes: u64,
        seq: u64,
    ) -> io::Result<WalWriter> {
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(segment_path(dir, seq))?;
        // The segment's directory entry must survive power loss along
        // with its contents.
        sync_dir(dir)?;
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            policy,
            segment_bytes: segment_bytes.max(1),
            file,
            seq,
            current_bytes: 0,
            last_sync: Instant::now(),
            dirty: false,
            appends: 0,
            bytes: 0,
        })
    }

    /// Append one record, sync according to policy, rotate if the segment
    /// is full. Returns the framed byte count.
    pub fn append(&mut self, rec: &WalRecord) -> io::Result<u64> {
        let framed = encode_record(rec);
        self.file.write_all(&framed)?;
        self.dirty = true;
        self.current_bytes += framed.len() as u64;
        self.appends += 1;
        self.bytes += framed.len() as u64;
        match self.policy {
            FsyncPolicy::PerBatch => self.sync()?,
            FsyncPolicy::Interval(window) => {
                if self.last_sync.elapsed() >= window {
                    self.sync()?;
                }
            }
            FsyncPolicy::Off => {}
        }
        if self.current_bytes >= self.segment_bytes {
            self.rotate()?;
        }
        Ok(framed.len() as u64)
    }

    /// Force an `fsync` of the current segment now.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.dirty {
            self.file.sync_data()?;
            self.dirty = false;
        }
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Close the current segment (synced) and start the next one.
    pub fn rotate(&mut self) -> io::Result<()> {
        self.sync()?;
        let next = self.seq + 1;
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(segment_path(&self.dir, next))?;
        sync_dir(&self.dir)?;
        self.file = file;
        self.seq = next;
        self.current_bytes = 0;
        self.dirty = false;
        Ok(())
    }

    /// Delete every segment with a seq strictly below `seq` (WAL pruning
    /// after a snapshot). Returns how many files were removed.
    pub fn remove_segments_below(&self, seq: u64) -> io::Result<u64> {
        let mut removed = 0;
        for (s, path) in list_segments(&self.dir)? {
            if s < seq {
                fs::remove_file(path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Seq of the segment currently being appended to.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Records appended through this writer.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Framed bytes appended through this writer.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        // Best-effort final sync so `FsyncPolicy::Interval`/`Off` don't
        // lose the tail on a clean shutdown.
        let _ = self.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sm-durable-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch_rec(epoch: u64) -> WalRecord {
        WalRecord::Batch {
            epoch,
            batch: UpdateBatch::new().add_edge(0, 1).delete_vertex(2),
        }
    }

    #[test]
    fn append_and_scan_round_trip() {
        let dir = tmpdir("roundtrip");
        let mut w = WalWriter::create(&dir, FsyncPolicy::Off, 1 << 20, 1).unwrap();
        for e in 1..=5 {
            w.append(&batch_rec(e)).unwrap();
        }
        let q = sm_graph::builder::graph_from_edges(&[0, 0], &[(0, 1)]);
        w.append(&WalRecord::Standing {
            index: 0,
            query: q.clone(),
        })
        .unwrap();
        w.sync().unwrap();
        let scan = scan_wal(&dir).unwrap();
        assert_eq!(scan.records.len(), 6);
        assert_eq!(scan.dropped_bytes, 0);
        match &scan.records[0] {
            WalRecord::Batch { epoch, batch } => {
                assert_eq!(*epoch, 1);
                assert_eq!(batch.add_edges, vec![(0, 1)]);
                assert_eq!(batch.delete_vertices, vec![2]);
            }
            other => panic!("expected batch, got {other:?}"),
        }
        match &scan.records[5] {
            WalRecord::Standing { index, query } => {
                assert_eq!(*index, 0);
                assert_eq!(query.num_edges(), 1);
            }
            other => panic!("expected standing, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_splits_segments_and_scan_spans_them() {
        let dir = tmpdir("rotate");
        // Tiny segment bound: every record rotates.
        let mut w = WalWriter::create(&dir, FsyncPolicy::Off, 1, 1).unwrap();
        for e in 1..=4 {
            w.append(&batch_rec(e)).unwrap();
        }
        assert!(w.seq() > 1);
        drop(w);
        let scan = scan_wal(&dir).unwrap();
        assert_eq!(scan.records.len(), 4);
        assert!(scan.segments.len() > 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_at_every_byte_boundary() {
        let dir = tmpdir("torn");
        let mut w = WalWriter::create(&dir, FsyncPolicy::Off, 1 << 20, 1).unwrap();
        for e in 1..=3 {
            w.append(&batch_rec(e)).unwrap();
        }
        drop(w);
        let path = segment_path(&dir, 1);
        let full = fs::read(&path).unwrap();
        let last_len = encode_record(&batch_rec(3)).len();
        let keep_two = full.len() - last_len;
        // Truncate inside the final record at every byte boundary: the
        // first two records always survive, the torn third never does.
        for cut in keep_two..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let scan = scan_wal(&dir).unwrap();
            assert_eq!(scan.records.len(), 2, "cut at byte {cut}");
            assert_eq!(scan.dropped_bytes, (cut - keep_two) as u64);
            if cut > keep_two {
                assert_eq!(
                    scan.torn,
                    Some(TornTail {
                        seq: 1,
                        valid_bytes: keep_two as u64
                    })
                );
            }
        }
        // Corrupt (rather than truncate) one byte of the final record.
        let mut corrupt = full.clone();
        *corrupt.last_mut().unwrap() ^= 0xFF;
        fs::write(&path, &corrupt).unwrap();
        let scan = scan_wal(&dir).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.dropped_bytes, last_len as u64);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_repair_truncates_and_deletes_later_segments() {
        let dir = tmpdir("repair");
        // Tiny segment bound: every record lands in its own segment.
        let mut w = WalWriter::create(&dir, FsyncPolicy::Off, 1, 1).unwrap();
        for e in 1..=3 {
            w.append(&batch_rec(e)).unwrap();
        }
        drop(w);
        // Corrupt the record in the *second* segment: the scan stops
        // there and drops segment 3 as well.
        let p2 = segment_path(&dir, 2);
        let mut bytes = fs::read(&p2).unwrap();
        *bytes.last_mut().unwrap() ^= 0xFF;
        fs::write(&p2, &bytes).unwrap();
        let scan = scan_wal(&dir).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(
            scan.torn,
            Some(TornTail {
                seq: 2,
                valid_bytes: 0
            })
        );
        assert!(scan.dropped_bytes > bytes.len() as u64);

        truncate_torn_tail(&dir, &scan).unwrap();
        assert_eq!(fs::metadata(&p2).unwrap().len(), 0);
        assert!(!segment_path(&dir, 3).exists());
        // Idempotent: a rescan finds nothing left to drop.
        let rescan = scan_wal(&dir).unwrap();
        assert_eq!(rescan.records.len(), 1);
        assert_eq!(rescan.dropped_bytes, 0);
        assert_eq!(rescan.torn, None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pruning_removes_old_segments() {
        let dir = tmpdir("prune");
        let mut w = WalWriter::create(&dir, FsyncPolicy::Off, 1, 1).unwrap();
        for e in 1..=3 {
            w.append(&batch_rec(e)).unwrap();
        }
        let head = w.seq();
        let removed = w.remove_segments_below(head).unwrap();
        assert!(removed > 0);
        let segs = list_segments(&dir).unwrap();
        assert!(segs.iter().all(|&(s, _)| s >= head));
        let _ = fs::remove_dir_all(&dir);
    }
}
