//! # sm-durable
//!
//! Durability for the service tier: an append-only, checksummed
//! write-ahead log for update batches and standing-query registrations,
//! an mmap-friendly on-disk CSR snapshot store, and the recovery scan
//! that turns "snapshot page-in + WAL-tail replay" into an instant
//! restart — no text parse, no NLF rebuild.
//!
//! The crate is deliberately engine-agnostic: it knows about
//! [`sm_delta::UpdateBatch`], [`sm_delta::VersionedGraph`] and
//! [`sm_graph::Graph`], nothing else. `sm-service` and `sm-shard` wire
//! it behind `Service::open` / `ShardedService::open`, both funneling
//! every update through the single [`commit_batch`] commit point so
//! neither tier can bypass the log.
//!
//! - [`codec`] — CRC-32 and the little-endian record codec.
//! - [`wal`] — segmented WAL writer and torn-tail-tolerant scanner.
//! - [`snapshot`] — the `snapshot-<epoch>.csr` file format.
//! - [`store`] — [`DurableStore`]: lifecycle, pruning, recovery.

#![warn(missing_docs)]

pub mod codec;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use codec::{crc32, crc32_combine, crc32_parallel, CodecError, Crc32};
pub use snapshot::{
    list_snapshots, read_snapshot, snapshot_path, write_snapshot, SnapshotData, SnapshotError,
    StandingSnapshot, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use store::{commit_batch, durable_io, DurabilityOptions, DurableStore, RecoveryReport};
pub use wal::{scan_wal, truncate_torn_tail, FsyncPolicy, TornTail, WalRecord, WalScan};
