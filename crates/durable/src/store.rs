//! [`DurableStore`]: one directory holding a snapshot lineage plus the
//! WAL tail after the newest snapshot — everything a service tier needs
//! to come back exactly where it crashed.
//!
//! The lifecycle is: [`DurableStore::create`] seeds a fresh directory
//! with snapshot 0; every effective update flows through
//! [`commit_batch`] (the single commit point shared by `Service` and the
//! sharded router); [`DurableStore::write_snapshot`] absorbs the log
//! into a new snapshot and prunes everything older; and
//! [`DurableStore::open`] recovers — newest valid snapshot, then the WAL
//! records the snapshot has not absorbed, in append order, with a torn
//! tail truncated off disk so it can never shadow later appends.

use crate::snapshot::{list_snapshots, read_snapshot, write_snapshot, SnapshotData};
use crate::wal::{list_segments, scan_wal, truncate_torn_tail, FsyncPolicy, WalRecord, WalWriter};
use sm_delta::{Committed, UpdateBatch, VersionedGraph};
use sm_graph::Graph;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Tuning knobs of a durable directory.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityOptions {
    /// When WAL appends reach the disk (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Segment size bound: the WAL rotates to a fresh file once the
    /// current one reaches this many bytes.
    pub segment_bytes: u64,
    /// WAL bytes accumulated since the last snapshot that trigger a new
    /// threshold snapshot. `0` disables the threshold (manual snapshots
    /// only).
    pub snapshot_threshold_bytes: u64,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            fsync: FsyncPolicy::PerBatch,
            segment_bytes: 8 << 20,
            snapshot_threshold_bytes: 4 << 20,
        }
    }
}

impl DurabilityOptions {
    /// Group-commit preset: sync at most once per `window`.
    pub fn grouped(window: Duration) -> Self {
        DurabilityOptions {
            fsync: FsyncPolicy::Interval(window),
            ..Default::default()
        }
    }
}

/// What a recovery found and did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch of the snapshot recovery started from.
    pub snapshot_epoch: u64,
    /// Update batches replayed from the WAL tail.
    pub replayed_batches: u64,
    /// Standing-query registrations replayed from the WAL tail.
    pub replayed_registrations: u64,
    /// Bytes dropped from the torn/corrupt end of the log.
    pub dropped_bytes: u64,
}

/// A durable directory: snapshot lineage + WAL, with counters.
pub struct DurableStore {
    dir: PathBuf,
    opts: DurabilityOptions,
    wal: WalWriter,
    wal_bytes_since_snapshot: u64,
    snapshots_written: u64,
}

impl DurableStore {
    /// Seed a fresh durable directory with `initial` as its first
    /// snapshot. Fails with `AlreadyExists` if the directory already
    /// holds a snapshot — an existing store must go through
    /// [`DurableStore::open`], never be silently clobbered.
    pub fn create(
        dir: &Path,
        opts: DurabilityOptions,
        initial: &SnapshotData,
    ) -> io::Result<DurableStore> {
        fs::create_dir_all(dir)?;
        if !list_snapshots(dir)?.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "directory already holds a durable store; use open()",
            ));
        }
        write_snapshot(dir, initial)?;
        let next_seq = list_segments(dir)?.last().map(|&(s, _)| s + 1).unwrap_or(1);
        let wal = WalWriter::create(dir, opts.fsync, opts.segment_bytes, next_seq)?;
        Ok(DurableStore {
            dir: dir.to_path_buf(),
            opts,
            wal,
            wal_bytes_since_snapshot: 0,
            snapshots_written: 1,
        })
    }

    /// Recover from `dir`: load the newest valid snapshot, scan the WAL,
    /// and return the records the snapshot has not absorbed — batch
    /// records stamped with an epoch above the snapshot's, registration
    /// records stamped with an index at or above the snapshot's standing
    /// count — in append order. A torn/corrupt tail is not just skipped
    /// but removed from disk (the torn segment truncated at its last
    /// intact record, later segments deleted) before the new writer
    /// opens: otherwise the next recovery's scan would stop at the same
    /// bad bytes and silently discard everything acknowledged after this
    /// one. New appends go to a fresh segment above everything scanned.
    pub fn open(
        dir: &Path,
        opts: DurabilityOptions,
    ) -> io::Result<(DurableStore, SnapshotData, Vec<WalRecord>, RecoveryReport)> {
        let mut snaps = list_snapshots(dir)?;
        snaps.reverse();
        if snaps.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "no snapshot in durable directory",
            ));
        }
        // Newest first; fall back past corrupt files (the atomic
        // tmp+rename write makes these rare, but recovery must not wedge
        // on one).
        let mut snapshot = None;
        for (_, path) in &snaps {
            match read_snapshot(path) {
                Ok(data) => {
                    snapshot = Some(data);
                    break;
                }
                Err(_) => continue,
            }
        }
        let Some(snapshot) = snapshot else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "every snapshot in the durable directory is corrupt",
            ));
        };

        let scan = scan_wal(dir)?;
        truncate_torn_tail(dir, &scan)?;
        let standing_count = snapshot.standing.len() as u64;
        let mut tail = Vec::new();
        let mut report = RecoveryReport {
            snapshot_epoch: snapshot.epoch,
            dropped_bytes: scan.dropped_bytes,
            ..Default::default()
        };
        for rec in scan.records {
            match &rec {
                WalRecord::Batch { epoch, .. } if *epoch > snapshot.epoch => {
                    report.replayed_batches += 1;
                    tail.push(rec);
                }
                WalRecord::Standing { index, .. } if *index >= standing_count => {
                    report.replayed_registrations += 1;
                    tail.push(rec);
                }
                _ => {} // absorbed by the snapshot
            }
        }
        let next_seq = scan.segments.last().map(|&s| s + 1).unwrap_or(1);
        let wal = WalWriter::create(dir, opts.fsync, opts.segment_bytes, next_seq)?;
        let store = DurableStore {
            dir: dir.to_path_buf(),
            opts,
            wal,
            wal_bytes_since_snapshot: 0,
            snapshots_written: 0,
        };
        Ok((store, snapshot, tail, report))
    }

    /// Append an effective update batch, stamped with the tier epoch its
    /// commit installs. Returns the framed byte count.
    pub fn append_batch(&mut self, epoch: u64, batch: &UpdateBatch) -> io::Result<u64> {
        let n = self.wal.append(&WalRecord::Batch {
            epoch,
            batch: batch.clone(),
        })?;
        self.wal_bytes_since_snapshot += n;
        Ok(n)
    }

    /// Append a standing-query registration, stamped with its index in
    /// the tier's append-only standing vector.
    pub fn append_standing(&mut self, index: u64, query: &Graph) -> io::Result<u64> {
        let n = self.wal.append(&WalRecord::Standing {
            index,
            query: query.clone(),
        })?;
        self.wal_bytes_since_snapshot += n;
        Ok(n)
    }

    /// Whether the WAL has grown past the snapshot threshold since the
    /// last snapshot.
    pub fn should_snapshot(&self) -> bool {
        self.opts.snapshot_threshold_bytes > 0
            && self.wal_bytes_since_snapshot >= self.opts.snapshot_threshold_bytes
    }

    /// Write a new snapshot absorbing everything logged so far, rotate
    /// the WAL to a fresh segment, and prune the older segments and
    /// snapshot files. After this returns, recovery starts from `data`.
    pub fn write_snapshot(&mut self, data: &SnapshotData) -> io::Result<u64> {
        let (path, bytes) = write_snapshot(&self.dir, data)?;
        self.wal.rotate()?;
        self.wal.remove_segments_below(self.wal.seq())?;
        for (_, old) in list_snapshots(&self.dir)? {
            if old != path {
                fs::remove_file(old)?;
            }
        }
        self.wal_bytes_since_snapshot = 0;
        self.snapshots_written += 1;
        Ok(bytes)
    }

    /// Force an `fsync` of the WAL now (used on clean shutdown under the
    /// interval/off policies).
    pub fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The options the store was opened with.
    pub fn options(&self) -> DurabilityOptions {
        self.opts
    }

    /// Records appended since this store was opened.
    pub fn wal_appends(&self) -> u64 {
        self.wal.appends()
    }

    /// Framed bytes appended since this store was opened.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }

    /// Snapshots written since this store was opened (`create` counts
    /// its seed snapshot).
    pub fn snapshots_written(&self) -> u64 {
        self.snapshots_written
    }

    /// Persist an opaque sidecar payload (the self-tuning planner's
    /// feedback image) alongside the snapshot lineage. Written
    /// atomically — `.tmp` sibling, `fsync`, rename, directory `fsync` —
    /// with a magic + length + CRC32 frame, so a torn write is detected
    /// on read and reported as absent rather than garbage. The payload
    /// is advisory state: losing it costs re-learning, never
    /// correctness, which is why it rides outside the snapshot format
    /// (old stores open unchanged).
    pub fn write_feedback(&mut self, payload: &[u8]) -> io::Result<()> {
        let path = self.dir.join(FEEDBACK_FILE);
        let tmp = self.dir.join(FEEDBACK_TMP);
        let mut framed = Vec::with_capacity(16 + payload.len());
        framed.extend_from_slice(&FEEDBACK_MAGIC);
        framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        framed.extend_from_slice(&crate::codec::crc32(payload).to_le_bytes());
        framed.extend_from_slice(payload);
        {
            let mut f = fs::File::create(&tmp)?;
            io::Write::write_all(&mut f, &framed)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &path)?;
        crate::wal::sync_dir(&self.dir)?;
        Ok(())
    }

    /// Read back the sidecar payload written by
    /// [`DurableStore::write_feedback`]. Returns `Ok(None)` when the
    /// file is absent *or* fails validation — advisory state degrades to
    /// "nothing learned yet", it never fails recovery.
    pub fn read_feedback(dir: &Path) -> io::Result<Option<Vec<u8>>> {
        let path = dir.join(FEEDBACK_FILE);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        if bytes.len() < 16 || bytes[..4] != FEEDBACK_MAGIC {
            return Ok(None);
        }
        let len = u64::from_le_bytes(bytes[4..12].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let Some(payload) = bytes.get(16..16 + len) else {
            return Ok(None);
        };
        if bytes.len() != 16 + len || crate::codec::crc32(payload) != crc {
            return Ok(None);
        }
        Ok(Some(payload.to_vec()))
    }
}

/// Sidecar file holding the planner's serialized feedback store.
const FEEDBACK_FILE: &str = "feedback.bin";
const FEEDBACK_TMP: &str = "feedback.bin.tmp";
const FEEDBACK_MAGIC: [u8; 4] = *b"SMFB";

/// The single durability commit point shared by `Service::apply_update`
/// and `ShardedService::apply_update`: commit `batch` against the tier's
/// global [`VersionedGraph`] and, iff the commit was effective, append
/// it to the WAL stamped with `next_epoch` — the tier epoch the caller
/// will install. Because both tiers call this one helper, neither can
/// bypass the log; and because the append (and its policy `fsync`)
/// completes before the caller publishes the new graph, no client ever
/// observes state the log cannot reproduce.
pub fn commit_batch(
    versioned: &VersionedGraph,
    store: Option<&mut DurableStore>,
    next_epoch: u64,
    batch: &UpdateBatch,
) -> io::Result<Committed> {
    let committed = versioned.commit(batch);
    if !committed.info.is_noop() {
        if let Some(store) = store {
            store.append_batch(next_epoch, batch)?;
        }
    }
    Ok(committed)
}

/// Unwrap a durability-critical I/O result; on failure, print a clear
/// message and abort the process. The service tiers call this while
/// holding their graph/versioned/durable locks: a `panic!` there would
/// poison the locks and turn one failed `fsync` (say, a transiently
/// full disk) into an opaque cascade of "poisoned" panics on every
/// later call. The durability contract — acknowledged means logged —
/// leaves no correct way to keep serving once the log can't be written,
/// so the process exits loudly and recovery restarts from the last
/// durable state.
pub fn durable_io<T>(what: &str, res: io::Result<T>) -> T {
    match res {
        Ok(v) => v,
        Err(e) => {
            eprintln!(
                "sm-durable: fatal: {what} failed, durability contract cannot be upheld: {e}"
            );
            std::process::abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::StandingSnapshot;
    use sm_graph::builder::graph_from_edges;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sm-durable-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seed() -> SnapshotData {
        let graph = graph_from_edges(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3)]);
        let nlf = graph.build_nlf();
        let label_pairs = sm_graph::label_index::LabelPairEdgeCounts::build(&graph);
        SnapshotData {
            epoch: 0,
            graph,
            nlf,
            label_pairs,
            standing: Vec::new(),
        }
    }

    #[test]
    fn create_refuses_to_clobber() {
        let dir = tmpdir("clobber");
        let _store = DurableStore::create(&dir, DurabilityOptions::default(), &seed()).unwrap();
        let err = DurableStore::create(&dir, DurabilityOptions::default(), &seed())
            .err()
            .expect("second create must fail");
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_replays_only_what_the_snapshot_missed() {
        let dir = tmpdir("filter");
        let opts = DurabilityOptions {
            fsync: FsyncPolicy::Off,
            ..Default::default()
        };
        let mut store = DurableStore::create(&dir, opts, &seed()).unwrap();
        store
            .append_batch(1, &UpdateBatch::new().add_edge(0, 2))
            .unwrap();
        store
            .append_standing(0, &graph_from_edges(&[0, 1], &[(0, 1)]))
            .unwrap();
        store
            .append_batch(2, &UpdateBatch::new().add_edge(0, 3))
            .unwrap();
        // Snapshot at epoch 2 with the one standing query absorbed.
        let mut absorbed = seed();
        absorbed.epoch = 2;
        absorbed.standing.push(StandingSnapshot {
            query: graph_from_edges(&[0, 1], &[(0, 1)]),
            matches: Vec::new(),
        });
        store.write_snapshot(&absorbed).unwrap();
        store
            .append_batch(3, &UpdateBatch::new().delete_edge(1, 2))
            .unwrap();
        drop(store);

        let (_store, snap, tail, report) = DurableStore::open(&dir, opts).unwrap();
        assert_eq!(snap.epoch, 2);
        assert_eq!(snap.standing.len(), 1);
        assert_eq!(tail.len(), 1, "only the post-snapshot batch replays");
        assert_eq!(report.replayed_batches, 1);
        assert_eq!(report.replayed_registrations, 0);
        assert_eq!(report.dropped_bytes, 0);
        match &tail[0] {
            WalRecord::Batch { epoch, batch } => {
                assert_eq!(*epoch, 3);
                assert_eq!(batch.delete_edges, vec![(1, 2)]);
            }
            other => panic!("unexpected tail record {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_removes_torn_tail_so_post_crash_appends_survive_a_second_crash() {
        let dir = tmpdir("torn-tail");
        let opts = DurabilityOptions {
            fsync: FsyncPolicy::Off,
            ..Default::default()
        };
        let mut store = DurableStore::create(&dir, opts, &seed()).unwrap();
        store
            .append_batch(1, &UpdateBatch::new().add_edge(0, 2))
            .unwrap();
        store
            .append_batch(2, &UpdateBatch::new().add_edge(0, 3))
            .unwrap();
        drop(store);
        // Crash tore the second record mid-write.
        let (_, seg) = list_segments(&dir).unwrap().pop().unwrap();
        let full = fs::read(&seg).unwrap();
        fs::write(&seg, &full[..full.len() - 3]).unwrap();

        let (mut store, _, tail, report) = DurableStore::open(&dir, opts).unwrap();
        assert_eq!(report.replayed_batches, 1);
        assert!(report.dropped_bytes > 0);
        // The torn bytes are gone from disk, not just skipped.
        assert!(fs::metadata(&seg).unwrap().len() < (full.len() - 3) as u64);
        assert_eq!(tail.len(), 1);
        // A batch acknowledged after recovery must survive the NEXT
        // restart — before the tail was truncated, the second scan
        // stopped at the stale torn bytes and dropped this record.
        store
            .append_batch(2, &UpdateBatch::new().delete_edge(1, 2))
            .unwrap();
        drop(store);
        let (_store, _snap, tail, report) = DurableStore::open(&dir, opts).unwrap();
        assert_eq!(report.dropped_bytes, 0, "no torn bytes left behind");
        assert_eq!(
            report.replayed_batches, 2,
            "both the pre-crash and post-recovery batches replay"
        );
        match &tail[1] {
            WalRecord::Batch { epoch, batch } => {
                assert_eq!(*epoch, 2);
                assert_eq!(batch.delete_edges, vec![(1, 2)]);
            }
            other => panic!("unexpected tail record {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_prunes_wal_and_old_snapshots() {
        let dir = tmpdir("prune");
        let opts = DurabilityOptions {
            fsync: FsyncPolicy::Off,
            segment_bytes: 1, // rotate on every append
            snapshot_threshold_bytes: 1,
        };
        let mut store = DurableStore::create(&dir, opts, &seed()).unwrap();
        store
            .append_batch(1, &UpdateBatch::new().add_edge(0, 2))
            .unwrap();
        assert!(store.should_snapshot());
        let mut next = seed();
        next.epoch = 1;
        store.write_snapshot(&next).unwrap();
        assert!(!store.should_snapshot());
        assert_eq!(list_snapshots(&dir).unwrap().len(), 1);
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        assert_eq!(store.snapshots_written(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn commit_helper_logs_effective_batches_only() {
        let dir = tmpdir("helper");
        let opts = DurabilityOptions {
            fsync: FsyncPolicy::Off,
            ..Default::default()
        };
        let mut store = DurableStore::create(&dir, opts, &seed()).unwrap();
        let vg = VersionedGraph::new(seed().graph);
        let c = commit_batch(&vg, Some(&mut store), 1, &UpdateBatch::new().add_edge(0, 2)).unwrap();
        assert!(!c.info.is_noop());
        assert_eq!(store.wal_appends(), 1);
        // A no-op batch commits but never reaches the log.
        let c = commit_batch(&vg, Some(&mut store), 2, &UpdateBatch::new().add_edge(0, 2)).unwrap();
        assert!(c.info.is_noop());
        assert_eq!(store.wal_appends(), 1);
        // And a non-durable tier passes `None` through the same path.
        let c = commit_batch(&vg, None, 2, &UpdateBatch::new().delete_edge(0, 1)).unwrap();
        assert!(!c.info.is_noop());
        assert_eq!(store.wal_appends(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn feedback_sidecar_roundtrips_and_rejects_corruption() {
        let dir = tmpdir("feedback");
        let opts = DurabilityOptions {
            fsync: FsyncPolicy::Off,
            ..Default::default()
        };
        let mut store = DurableStore::create(&dir, opts, &seed()).unwrap();
        // absent before the first write
        assert_eq!(DurableStore::read_feedback(&dir).unwrap(), None);
        let payload = vec![7u8; 300];
        store.write_feedback(&payload).unwrap();
        assert_eq!(DurableStore::read_feedback(&dir).unwrap(), Some(payload));
        // overwrites replace
        store.write_feedback(&[1, 2, 3]).unwrap();
        assert_eq!(
            DurableStore::read_feedback(&dir).unwrap(),
            Some(vec![1, 2, 3])
        );
        // a flipped payload byte fails the CRC → reported absent
        let path = dir.join(super::FEEDBACK_FILE);
        let mut bytes = fs::read(&path).unwrap();
        *bytes.last_mut().unwrap() ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(DurableStore::read_feedback(&dir).unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
