//! The on-disk CSR snapshot format.
//!
//! A snapshot file `snapshot-<epoch>.csr` holds everything needed to
//! bring a service back without parsing text or rebuilding indexes: the
//! data graph's CSR arrays, its NLF index, and every standing query with
//! its persisted embedding set. The layout is a fixed 64-byte
//! little-endian header followed by 8-byte-aligned sections, so a loader
//! could mmap the file and read the arrays in place; this implementation
//! reads them into owned vectors but keeps the alignment contract.
//!
//! ```text
//! header (64 bytes, little-endian):
//!   0  magic            b"SMDGSNAP"
//!   8  format version   u32
//!   12 crc32            u32   (over header bytes 16..64 then the body)
//!   16 epoch            u64
//!   24 num_vertices     u64
//!   32 adjacency_len    u64   (2|E|)
//!   40 nlf_entries      u64
//!   48 standing_count   u64
//!   56 body_len         u64
//! body (checksummed as one blob):
//!   offsets     (n+1) x u64
//!   adjacency   adjacency_len x u32, zero-padded to 8
//!   labels      n x u32, zero-padded to 8
//!   nlf offsets (n+1) x u64
//!   nlf entries nlf_entries x (label u32, count u32)
//!   label pairs count u64, then count x (a u32, b u32, edges u64),
//!               normalized (a <= b) and sorted ascending
//!   standing    per entry: query-graph codec, pad8,
//!               arity u32, row_count u32, rows (arity x u32 each), pad8
//! ```
//!
//! Writes go to a `.tmp` sibling, `fsync`, rename, then `fsync` of the
//! directory — a crash during a snapshot write can never shadow the
//! previous valid snapshot, and once `write_snapshot` returns the
//! rename itself is durable, so the caller may safely prune the older
//! snapshots and WAL segments the new one supersedes.

use crate::codec::{
    crc32, crc32_combine, crc32_parallel, decode_graph, encode_graph, CodecError, Dec, Enc,
};
use sm_graph::label_index::LabelPairEdgeCounts;
use sm_graph::{Graph, Label, NlfIndex, VertexId};
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The 8-byte magic opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SMDGSNAP";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;
const HEADER_BYTES: usize = 64;

/// A standing query as persisted: the query graph plus its embedding set
/// at snapshot time (sorted rows). Sharded snapshots persist the query
/// with an empty set and re-enumerate per shard on recovery.
#[derive(Clone, Debug)]
pub struct StandingSnapshot {
    /// The registered query graph.
    pub query: Graph,
    /// The embedding set at snapshot time, one row per match.
    pub matches: Vec<Vec<VertexId>>,
}

/// Everything a snapshot file stores.
#[derive(Clone, Debug)]
pub struct SnapshotData {
    /// The tier epoch this snapshot captures.
    pub epoch: u64,
    /// The data graph, as materialized CSR.
    pub graph: Graph,
    /// The graph's NLF index (persisted so recovery skips the rebuild).
    pub nlf: NlfIndex,
    /// Label-pair edge counts (persisted so recovery skips the edge scan).
    pub label_pairs: LabelPairEdgeCounts,
    /// Standing queries in registration order.
    pub standing: Vec<StandingSnapshot>,
}

/// Why a snapshot failed to load.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read.
    Io(io::Error),
    /// The bytes are not a valid snapshot (bad magic/version/checksum or
    /// structurally invalid body).
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> Self {
        SnapshotError::Corrupt(match e {
            CodecError::Truncated => "truncated body",
            CodecError::Invalid(what) => what,
        })
    }
}

/// Path of the snapshot for `epoch` under `dir`.
pub fn snapshot_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("snapshot-{epoch:016x}.csr"))
}

/// Snapshot files under `dir`, as `(epoch, path)` sorted ascending.
pub fn list_snapshots(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(hex) = name
            .strip_prefix("snapshot-")
            .and_then(|rest| rest.strip_suffix(".csr"))
        {
            if let Ok(epoch) = u64::from_str_radix(hex, 16) {
                out.push((epoch, path));
            }
        }
    }
    out.sort_unstable_by_key(|&(e, _)| e);
    Ok(out)
}

fn encode_body(data: &SnapshotData) -> Vec<u8> {
    let (offsets, neighbors, labels) = data.graph.csr();
    let n = labels.len();
    let mut e = Enc::new();
    for &o in offsets {
        e.put_u64(o as u64);
    }
    e.put_u32_slice(neighbors);
    e.pad8();
    e.put_u32_slice(labels);
    e.pad8();
    // NLF as its own CSR: row offsets then flat (label, count) entries.
    let mut off = 0u64;
    for v in 0..=n {
        e.put_u64(off);
        if v < n {
            off += data.nlf.entry(v as VertexId).len() as u64;
        }
    }
    let flat: Vec<u32> = (0..n)
        .flat_map(|v| {
            data.nlf
                .entry(v as VertexId)
                .iter()
                .flat_map(|&(l, c)| [l, c])
        })
        .collect();
    e.put_u32_slice(&flat);
    // Label-pair edge counts: 16-byte (a, b, count) triples in sorted
    // order. Flat entries are (u32, u32) so the section starts 8-aligned.
    let pairs = data.label_pairs.sorted_pairs();
    e.put_u64(pairs.len() as u64);
    for &((a, b), c) in &pairs {
        e.put_u32(a);
        e.put_u32(b);
        e.put_u64(c);
    }
    for s in &data.standing {
        encode_graph(&s.query, &mut e);
        e.pad8();
        let arity = s.query.num_vertices() as u32;
        e.put_u32(arity);
        e.put_u32(s.matches.len() as u32);
        for row in &s.matches {
            debug_assert_eq!(row.len(), arity as usize);
            for &v in row {
                e.put_u32(v);
            }
        }
        e.pad8();
    }
    e.into_bytes()
}

/// Number of NLF entries a snapshot of `data` will store.
fn nlf_entry_count(data: &SnapshotData) -> u64 {
    (0..data.graph.num_vertices())
        .map(|v| data.nlf.entry(v as VertexId).len() as u64)
        .sum()
}

/// Write `data` as `snapshot-<epoch>.csr` under `dir` (atomically, via
/// a `.tmp` sibling and rename, with the directory `fsync`ed after the
/// rename so the new name survives power loss before anything older is
/// pruned). Returns the final path and byte size.
pub fn write_snapshot(dir: &Path, data: &SnapshotData) -> io::Result<(PathBuf, u64)> {
    let body = encode_body(data);
    let mut tail = Enc::new();
    tail.put_u64(data.epoch);
    tail.put_u64(data.graph.num_vertices() as u64);
    tail.put_u64(data.graph.adjacency_len() as u64);
    tail.put_u64(nlf_entry_count(data));
    tail.put_u64(data.standing.len() as u64);
    tail.put_u64(body.len() as u64);
    let tail = tail.into_bytes();
    let digest = crc32_combine(crc32(&tail), crc32_parallel(&body), body.len() as u64);
    let mut header = Enc::new();
    header.put_bytes(&SNAPSHOT_MAGIC);
    header.put_u32(SNAPSHOT_VERSION);
    header.put_u32(digest);
    header.put_bytes(&tail);
    let header = header.into_bytes();
    debug_assert_eq!(header.len(), HEADER_BYTES);

    let path = snapshot_path(dir, data.epoch);
    let tmp = path.with_extension("csr.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&header)?;
        f.write_all(&body)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, &path)?;
    // Without this, a power failure can persist the caller's subsequent
    // unlinks of the old snapshot and WAL segments while losing the
    // rename — leaving a directory with no valid snapshot at all.
    crate::wal::sync_dir(dir)?;
    Ok((path, (header.len() + body.len()) as u64))
}

/// Load and validate the snapshot at `path`.
pub fn read_snapshot(path: &Path) -> Result<SnapshotData, SnapshotError> {
    // fs::read pre-sizes the buffer from the file length — one
    // allocation and one read for a multi-megabyte snapshot.
    let bytes = std::fs::read(path)?;
    if bytes.len() < HEADER_BYTES {
        return Err(SnapshotError::Corrupt("shorter than the header"));
    }
    let (header, body) = bytes.split_at(HEADER_BYTES);
    let mut h = Dec::new(header);
    if h.get_bytes(8).unwrap() != SNAPSHOT_MAGIC {
        return Err(SnapshotError::Corrupt("bad magic"));
    }
    if h.get_u32().unwrap() != SNAPSHOT_VERSION {
        return Err(SnapshotError::Corrupt("unsupported format version"));
    }
    let want_crc = h.get_u32().unwrap();
    let epoch = h.get_u64().unwrap();
    let n = h.get_u64().unwrap() as usize;
    let adjacency_len = h.get_u64().unwrap() as usize;
    let nlf_entries = h.get_u64().unwrap() as usize;
    let standing_count = h.get_u64().unwrap() as usize;
    let body_len = h.get_u64().unwrap() as usize;
    if body.len() != body_len {
        return Err(SnapshotError::Corrupt("body length mismatch"));
    }
    let got = crc32_combine(
        crc32(&header[16..]),
        crc32_parallel(body),
        body.len() as u64,
    );
    if got != want_crc {
        return Err(SnapshotError::Corrupt("checksum mismatch"));
    }

    let mut d = Dec::new(body);
    let offsets = d.get_usize_slice(n + 1)?;
    let neighbors = d.get_u32_slice(adjacency_len)?;
    d.skip_pad8()?;
    let labels = d.get_u32_slice(n)?;
    d.skip_pad8()?;
    let graph = Graph::from_csr(offsets, neighbors, labels).map_err(SnapshotError::Corrupt)?;

    let nlf_offsets = d.get_usize_slice(n + 1)?;
    let entries: Vec<(Label, u32)> = d.get_u32_pairs(nlf_entries)?;
    let nlf = NlfIndex::from_csr(nlf_offsets, entries)
        .ok_or(SnapshotError::Corrupt("nlf index out of shape"))?;

    let pair_count = d.get_u64()? as usize;
    if pair_count.saturating_mul(16) > d.remaining() {
        return Err(SnapshotError::Corrupt("label pairs exceed body"));
    }
    let mut pairs = Vec::with_capacity(pair_count);
    for _ in 0..pair_count {
        let a = d.get_u32()?;
        let b = d.get_u32()?;
        let c = d.get_u64()?;
        pairs.push(((a, b), c));
    }
    let label_pairs = LabelPairEdgeCounts::from_pairs(pairs)
        .ok_or(SnapshotError::Corrupt("malformed label pairs"))?;

    let mut standing = Vec::with_capacity(standing_count);
    for _ in 0..standing_count {
        let query = decode_graph(&mut d)?;
        d.skip_pad8()?;
        let arity = d.get_u32()? as usize;
        if arity != query.num_vertices() {
            return Err(SnapshotError::Corrupt("standing arity mismatch"));
        }
        let rows = d.get_u32()? as usize;
        if rows.saturating_mul(arity.max(1)).saturating_mul(4) > d.remaining() {
            return Err(SnapshotError::Corrupt("standing rows exceed body"));
        }
        let mut matches = Vec::with_capacity(rows);
        for _ in 0..rows {
            let mut row = Vec::with_capacity(arity);
            for _ in 0..arity {
                row.push(d.get_u32()?);
            }
            matches.push(row);
        }
        d.skip_pad8()?;
        standing.push(StandingSnapshot { query, matches });
    }
    if !d.finished() {
        return Err(SnapshotError::Corrupt("trailing bytes after body"));
    }
    Ok(SnapshotData {
        epoch,
        graph,
        nlf,
        label_pairs,
        standing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_graph::builder::graph_from_edges;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sm-durable-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> SnapshotData {
        let graph = graph_from_edges(
            &[0, 1, 0, 2, 1],
            &[(0, 1), (1, 2), (2, 3), (0, 3), (3, 4), (1, 4)],
        );
        let nlf = graph.build_nlf();
        let label_pairs = LabelPairEdgeCounts::build(&graph);
        let query = graph_from_edges(&[0, 1], &[(0, 1)]);
        SnapshotData {
            epoch: 17,
            graph,
            nlf,
            label_pairs,
            standing: vec![StandingSnapshot {
                query,
                matches: vec![vec![0, 1], vec![2, 1]],
            }],
        }
    }

    #[test]
    fn write_read_round_trips_graph_nlf_and_standing() {
        let dir = tmpdir("roundtrip");
        let data = sample();
        let (path, bytes) = write_snapshot(&dir, &data).unwrap();
        assert!(bytes >= HEADER_BYTES as u64);
        let got = read_snapshot(&path).unwrap();
        assert_eq!(got.epoch, 17);
        assert_eq!(got.graph.num_vertices(), data.graph.num_vertices());
        assert_eq!(got.graph.num_edges(), data.graph.num_edges());
        for v in data.graph.vertices() {
            assert_eq!(got.graph.label(v), data.graph.label(v));
            assert_eq!(got.graph.neighbors(v), data.graph.neighbors(v));
            assert_eq!(got.nlf.entry(v), data.nlf.entry(v));
        }
        assert_eq!(
            got.label_pairs.sorted_pairs(),
            data.label_pairs.sorted_pairs()
        );
        assert_eq!(got.standing.len(), 1);
        assert_eq!(got.standing[0].query.num_edges(), 1);
        assert_eq!(got.standing[0].matches, vec![vec![0, 1], vec![2, 1]]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn any_flipped_byte_is_rejected() {
        let dir = tmpdir("corrupt");
        let data = sample();
        let (path, _) = write_snapshot(&dir, &data).unwrap();
        let good = fs::read(&path).unwrap();
        // Flip one byte at a spread of positions: header fields, body.
        for pos in [0usize, 9, 13, 20, 60, 70, good.len() - 1] {
            let mut bad = good.clone();
            bad[pos] ^= 0x01;
            fs::write(&path, &bad).unwrap();
            assert!(
                matches!(read_snapshot(&path), Err(SnapshotError::Corrupt(_))),
                "flip at {pos} was accepted"
            );
        }
        // Truncation is rejected too.
        fs::write(&path, &good[..good.len() - 3]).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(SnapshotError::Corrupt(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn listing_sorts_by_epoch() {
        let dir = tmpdir("list");
        for epoch in [5u64, 1, 9] {
            let mut data = sample();
            data.epoch = epoch;
            write_snapshot(&dir, &data).unwrap();
        }
        let epochs: Vec<u64> = list_snapshots(&dir)
            .unwrap()
            .into_iter()
            .map(|(e, _)| e)
            .collect();
        assert_eq!(epochs, vec![1, 5, 9]);
        let _ = fs::remove_dir_all(&dir);
    }
}
