//! The little-endian record codec shared by the WAL and the snapshot
//! store: CRC-32 checksumming, bounds-checked primitive readers/writers,
//! and the encodings of [`UpdateBatch`] and query [`Graph`] values.
//!
//! Everything here is deliberately dumb: fixed-width little-endian
//! integers, explicit counts, no varints, no compression. The decoder
//! never trusts a count it read — every length is checked against the
//! bytes that remain before allocating, so a corrupt record fails with
//! [`CodecError`] instead of an abort.

use sm_delta::UpdateBatch;
use sm_graph::{Graph, GraphBuilder};
use std::fmt;

/// CRC-32 lookup tables (IEEE 802.3, reflected polynomial `0xEDB88320`),
/// built at compile time. Sixteen tables implement *slicing-by-16*: the
/// hot loop folds 16 input bytes per iteration instead of 1, which
/// matters because every snapshot body (megabytes of CSR) is checksummed
/// on both the write and the recovery path.
const CRC_TABLES: [[u32; 256]; 16] = build_crc_tables();

const fn build_crc_tables() -> [[u32; 256]; 16] {
    let mut t = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 16 {
        let mut i = 0;
        while i < 256 {
            t[j][i] = (t[j - 1][i] >> 8) ^ t[0][(t[j - 1][i] & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
}

/// Fold one aligned little-endian word through tables `base+3 ..= base`.
#[inline(always)]
fn fold_word(w: u32, base: usize) -> u32 {
    CRC_TABLES[base + 3][(w & 0xFF) as usize]
        ^ CRC_TABLES[base + 2][((w >> 8) & 0xFF) as usize]
        ^ CRC_TABLES[base + 1][((w >> 16) & 0xFF) as usize]
        ^ CRC_TABLES[base][(w >> 24) as usize]
}

/// CRC-32 (IEEE) of `bytes` — the checksum in every WAL record frame and
/// every snapshot header.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// Multiply the 32-bit GF(2) matrix `mat` by the vector `vec`.
fn gf2_matrix_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

/// `square = mat * mat` over GF(2).
fn gf2_matrix_square(square: &mut [u32; 32], mat: &[u32; 32]) {
    for n in 0..32 {
        square[n] = gf2_matrix_times(mat, mat[n]);
    }
}

/// Combine two finished CRC-32 digests: returns the digest of the
/// concatenation `A ++ B` given `crc32(A)`, `crc32(B)`, and `|B|`.
///
/// CRC is linear over GF(2), so appending `len_b` bytes to `A` multiplies
/// its digest by the "advance one byte" matrix `len_b` times; the loop
/// applies that operator in `O(log len_b)` squarings. This is what lets
/// the snapshot reader checksum a multi-megabyte body in parallel chunks
/// and still compare one digest.
pub fn crc32_combine(mut crc_a: u32, crc_b: u32, mut len_b: u64) -> u32 {
    if len_b == 0 {
        return crc_a;
    }
    let mut even = [0u32; 32]; // operator for 2^(2k+1) zero bytes
    let mut odd = [0u32; 32]; // operator for 2^(2k) zero bytes
    odd[0] = 0xEDB8_8320; // shift-by-one-bit matrix (reflected poly)
    let mut row = 1u32;
    for cell in odd.iter_mut().skip(1) {
        *cell = row;
        row <<= 1;
    }
    gf2_matrix_square(&mut even, &odd); // shift by 2 bits
    gf2_matrix_square(&mut odd, &even); // shift by 4 bits
    loop {
        gf2_matrix_square(&mut even, &odd); // shift by 1, 4, 16, ... bytes
        if len_b & 1 != 0 {
            crc_a = gf2_matrix_times(&even, crc_a);
        }
        len_b >>= 1;
        if len_b == 0 {
            break;
        }
        gf2_matrix_square(&mut odd, &even);
        if len_b & 1 != 0 {
            crc_a = gf2_matrix_times(&odd, crc_a);
        }
        len_b >>= 1;
        if len_b == 0 {
            break;
        }
    }
    crc_a ^ crc_b
}

/// CRC-32 of `bytes` computed over up to 4 parallel chunks and folded
/// with [`crc32_combine`] — same digest as [`crc32`], a fraction of the
/// wall time on the multi-megabyte snapshot bodies. Small inputs stay on
/// the sequential path.
pub fn crc32_parallel(bytes: &[u8]) -> u32 {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4);
    if threads < 2 || bytes.len() < (1 << 20) {
        return crc32(bytes);
    }
    let chunk = bytes.len().div_ceil(threads);
    let parts: Vec<&[u8]> = bytes.chunks(chunk).collect();
    let digests: Vec<u32> = std::thread::scope(|s| {
        let handles: Vec<_> = parts.iter().map(|p| s.spawn(move || crc32(p))).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut acc = digests[0];
    for (part, &d) in parts.iter().zip(&digests).skip(1) {
        acc = crc32_combine(acc, d, part.len() as u64);
    }
    acc
}

/// Streaming CRC-32 (IEEE) — same digest as [`crc32`] over the
/// concatenation of every `update` slice, without concatenating them.
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Start a fresh digest.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed more bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        let mut chunks = bytes.chunks_exact(16);
        for ch in &mut chunks {
            let w0 = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
            let w1 = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
            let w2 = u32::from_le_bytes([ch[8], ch[9], ch[10], ch[11]]);
            let w3 = u32::from_le_bytes([ch[12], ch[13], ch[14], ch[15]]);
            c = fold_word(w0, 12) ^ fold_word(w1, 8) ^ fold_word(w2, 4) ^ fold_word(w3, 0);
        }
        for &b in chunks.remainder() {
            c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The finished checksum.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// Why a record or snapshot body failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value it should contain.
    Truncated,
    /// The bytes decoded to a structurally invalid value.
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated input"),
            CodecError::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only little-endian writer over a `Vec<u8>`.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty buffer.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Append a slice of `u32`s, little-endian, with one reservation —
    /// the bulk writer behind the snapshot CSR sections.
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.buf.reserve(vs.len() * 4);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Zero-pad to the next 8-byte boundary (snapshot section alignment).
    pub fn pad8(&mut self) {
        while !self.buf.len().is_multiple_of(8) {
            self.buf.push(0);
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The finished buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian reader over a byte slice.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn finished(&self) -> bool {
        self.remaining() == 0
    }

    /// Consume `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consume one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.get_bytes(1)?[0])
    }

    /// Consume a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.get_bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Consume a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.get_bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Consume `n` little-endian `u32`s in one bounds check — the bulk
    /// reader behind the snapshot CSR sections.
    pub fn get_u32_slice(&mut self, n: usize) -> Result<Vec<u32>, CodecError> {
        let bytes = self.get_bytes(n.checked_mul(4).ok_or(CodecError::Truncated)?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Consume `n` little-endian `u64`s in one bounds check.
    pub fn get_u64_slice(&mut self, n: usize) -> Result<Vec<u64>, CodecError> {
        let bytes = self.get_bytes(n.checked_mul(8).ok_or(CodecError::Truncated)?)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect())
    }

    /// Consume `n` little-endian `u64`s directly into `usize`s — the
    /// snapshot offset arrays, decoded without an intermediate `u64`
    /// buffer. A value that does not fit `usize` is `Invalid`.
    pub fn get_usize_slice(&mut self, n: usize) -> Result<Vec<usize>, CodecError> {
        let bytes = self.get_bytes(n.checked_mul(8).ok_or(CodecError::Truncated)?)?;
        let mut out = Vec::with_capacity(n);
        for c in bytes.chunks_exact(8) {
            let v = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
            out.push(usize::try_from(v).map_err(|_| CodecError::Invalid("offset exceeds usize"))?);
        }
        Ok(out)
    }

    /// Consume `n` little-endian `(u32, u32)` pairs in one bounds check.
    pub fn get_u32_pairs(&mut self, n: usize) -> Result<Vec<(u32, u32)>, CodecError> {
        let bytes = self.get_bytes(n.checked_mul(8).ok_or(CodecError::Truncated)?)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                (
                    u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                    u32::from_le_bytes([c[4], c[5], c[6], c[7]]),
                )
            })
            .collect())
    }

    /// Consume padding up to the next 8-byte boundary (must be zeros).
    pub fn skip_pad8(&mut self) -> Result<(), CodecError> {
        while !self.pos.is_multiple_of(8) {
            if self.get_u8()? != 0 {
                return Err(CodecError::Invalid("nonzero padding"));
            }
        }
        Ok(())
    }

    /// Read a count and pre-check that at least `count * elem_bytes` bytes
    /// remain — a corrupt count cannot trigger a huge allocation.
    fn get_count(&mut self, elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.get_u32()? as usize;
        if n.saturating_mul(elem_bytes) > self.remaining() {
            return Err(CodecError::Invalid("count exceeds remaining bytes"));
        }
        Ok(n)
    }
}

/// Encode an [`UpdateBatch`] exactly as its four public op lists:
/// `add_vertices`, `delete_vertices`, `add_edges`, `delete_edges`, each
/// as a `u32` count followed by `u32` elements (pairs for edges).
pub fn encode_batch(batch: &UpdateBatch, enc: &mut Enc) {
    enc.put_u32(batch.add_vertices.len() as u32);
    for &l in &batch.add_vertices {
        enc.put_u32(l);
    }
    enc.put_u32(batch.delete_vertices.len() as u32);
    for &v in &batch.delete_vertices {
        enc.put_u32(v);
    }
    enc.put_u32(batch.add_edges.len() as u32);
    for &(u, v) in &batch.add_edges {
        enc.put_u32(u);
        enc.put_u32(v);
    }
    enc.put_u32(batch.delete_edges.len() as u32);
    for &(u, v) in &batch.delete_edges {
        enc.put_u32(u);
        enc.put_u32(v);
    }
}

/// Decode an [`UpdateBatch`] written by [`encode_batch`].
pub fn decode_batch(dec: &mut Dec<'_>) -> Result<UpdateBatch, CodecError> {
    let mut batch = UpdateBatch::new();
    let n = dec.get_count(4)?;
    batch.add_vertices.reserve(n);
    for _ in 0..n {
        batch.add_vertices.push(dec.get_u32()?);
    }
    let n = dec.get_count(4)?;
    batch.delete_vertices.reserve(n);
    for _ in 0..n {
        batch.delete_vertices.push(dec.get_u32()?);
    }
    let n = dec.get_count(8)?;
    batch.add_edges.reserve(n);
    for _ in 0..n {
        batch.add_edges.push((dec.get_u32()?, dec.get_u32()?));
    }
    let n = dec.get_count(8)?;
    batch.delete_edges.reserve(n);
    for _ in 0..n {
        batch.delete_edges.push((dec.get_u32()?, dec.get_u32()?));
    }
    Ok(batch)
}

/// Encode a (small) query graph: `u32 n`, `n` labels, `u32 m`, then `m`
/// edges as `(u, v)` pairs with `u < v`. Used for persisted standing
/// queries — data graphs go through the snapshot CSR sections instead.
pub fn encode_graph(g: &Graph, enc: &mut Enc) {
    enc.put_u32(g.num_vertices() as u32);
    for v in g.vertices() {
        enc.put_u32(g.label(v));
    }
    enc.put_u32(g.num_edges() as u32);
    for (u, v) in g.edges() {
        enc.put_u32(u);
        enc.put_u32(v);
    }
}

/// Decode a query graph written by [`encode_graph`].
pub fn decode_graph(dec: &mut Dec<'_>) -> Result<Graph, CodecError> {
    let n = dec.get_count(4)?;
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_vertex(dec.get_u32()?);
    }
    let m = dec.get_count(8)?;
    for _ in 0..m {
        let (u, v) = (dec.get_u32()?, dec.get_u32()?);
        if u >= v || v as usize >= n {
            return Err(CodecError::Invalid("query edge out of range"));
        }
        b.add_edge(u, v);
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The standard CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn crc32_streaming_matches_one_shot_at_odd_splits() {
        // Exercises the slicing-by-16 fast path, the byte remainder, and
        // resumption at non-multiple-of-16 states.
        let data: Vec<u8> = (0..1021u32).map(|i| (i.wrapping_mul(131)) as u8).collect();
        let want = crc32(&data);
        for split in [0usize, 1, 7, 8, 9, 15, 16, 17, 512, 1021] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), want, "split {split}");
        }
    }

    #[test]
    fn combine_and_parallel_match_the_one_shot_digest() {
        let data: Vec<u8> = (0..3_000_000u32)
            .map(|i| (i.wrapping_mul(2654435761)) as u8)
            .collect();
        let want = crc32(&data);
        for split in [0usize, 1, 9, 1024, data.len() / 2, data.len()] {
            let (a, b) = data.split_at(split);
            assert_eq!(
                crc32_combine(crc32(a), crc32(b), b.len() as u64),
                want,
                "split {split}"
            );
        }
        assert_eq!(crc32_parallel(&data), want);
        assert_eq!(crc32_parallel(b"tiny"), crc32(b"tiny"));
        assert_eq!(crc32_parallel(b""), 0);
    }

    #[test]
    fn bulk_slices_round_trip() {
        let mut e = Enc::new();
        e.put_u32_slice(&[1, u32::MAX, 42]);
        e.put_u64(9);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.get_u32_slice(3).unwrap(), vec![1, u32::MAX, 42]);
        assert_eq!(d.get_u64_slice(1).unwrap(), vec![9]);
        assert!(d.finished());
        assert_eq!(
            Dec::new(&bytes).get_u32_slice(usize::MAX).err(),
            Some(CodecError::Truncated)
        );
        assert_eq!(
            Dec::new(&bytes).get_u64_slice(3).err(),
            Some(CodecError::Truncated)
        );
    }

    #[test]
    fn primitives_round_trip() {
        let mut e = Enc::new();
        e.put_u8(7);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX - 1);
        e.pad8();
        let bytes = e.into_bytes();
        assert_eq!(bytes.len() % 8, 0);
        let mut d = Dec::new(&bytes);
        assert_eq!(d.get_u8().unwrap(), 7);
        assert_eq!(d.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.get_u64().unwrap(), u64::MAX - 1);
        d.skip_pad8().unwrap();
        assert!(d.finished());
        assert_eq!(Dec::new(&bytes[..3]).get_u32(), Err(CodecError::Truncated));
    }

    #[test]
    fn batch_round_trips() {
        let batch = UpdateBatch::new()
            .add_vertex(3)
            .add_vertex(0)
            .delete_vertex(7)
            .add_edge(1, 2)
            .delete_edge(4, 5);
        let mut e = Enc::new();
        encode_batch(&batch, &mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let got = decode_batch(&mut d).unwrap();
        assert!(d.finished());
        assert_eq!(got.add_vertices, batch.add_vertices);
        assert_eq!(got.delete_vertices, batch.delete_vertices);
        assert_eq!(got.add_edges, batch.add_edges);
        assert_eq!(got.delete_edges, batch.delete_edges);
    }

    #[test]
    fn corrupt_counts_do_not_allocate() {
        let mut e = Enc::new();
        e.put_u32(u32::MAX); // absurd element count, no payload
        let bytes = e.into_bytes();
        assert_eq!(
            decode_batch(&mut Dec::new(&bytes)).err(),
            Some(CodecError::Invalid("count exceeds remaining bytes"))
        );
    }

    #[test]
    fn graph_round_trips() {
        let g = sm_graph::builder::graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]);
        let mut e = Enc::new();
        encode_graph(&g, &mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let got = decode_graph(&mut d).unwrap();
        assert!(d.finished());
        assert_eq!(got.num_vertices(), 3);
        assert_eq!(got.num_edges(), 3);
        for v in g.vertices() {
            assert_eq!(got.label(v), g.label(v));
            assert_eq!(got.neighbors(v), g.neighbors(v));
        }
    }
}
