//! [`GraphView`]: the read surface of a data graph, as a trait.
//!
//! The static matching stack works on the concrete CSR
//! [`sm_graph::Graph`]; the dynamic layer needs the same queries answered
//! by a [`crate::Snapshot`] (base + overlays) without materializing a new
//! CSR per epoch. This trait captures exactly the surface the incremental
//! enumeration engine touches — neighbors, labels, degrees, edge tests,
//! and the NLF/label-index lookups used for pruning. Neighbor lists are
//! sorted ascending on every implementor, so `has_edge` stays a binary
//! search and intersection-style consumers keep their merge invariants.

use sm_graph::{Graph, Label, VertexId};

/// Read-only graph queries shared by [`sm_graph::Graph`] and
/// [`crate::Snapshot`].
pub trait GraphView {
    /// Number of vertices (tombstoned ids included — ids are stable).
    fn num_vertices(&self) -> usize;

    /// Number of undirected edges currently live.
    fn num_edges(&self) -> usize;

    /// Label of vertex `v`.
    fn label(&self, v: VertexId) -> Label;

    /// Degree of `v` (0 for tombstones).
    fn degree(&self, v: VertexId) -> usize;

    /// Sorted neighbor list of `v`.
    fn neighbors(&self, v: VertexId) -> &[VertexId];

    /// Whether the undirected edge `(u, v)` exists.
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Sorted `(label, count)` pairs describing `N(v)`'s label multiset —
    /// the NLF row of `v`.
    fn nlf_entry(&self, v: VertexId) -> &[(Label, u32)];

    /// Count of neighbors of `v` labeled `l`.
    fn nlf_count(&self, v: VertexId, l: Label) -> u32 {
        let e = self.nlf_entry(v);
        match e.binary_search_by_key(&l, |&(ll, _)| ll) {
            Ok(i) => e[i].1,
            Err(_) => 0,
        }
    }

    /// Number of live vertices carrying label `l`.
    fn label_frequency(&self, l: Label) -> usize;

    /// Sorted live vertices carrying label `l`.
    fn vertices_with_label(&self, l: Label) -> &[VertexId];
}

impl GraphView for Graph {
    #[inline]
    fn num_vertices(&self) -> usize {
        Graph::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        Graph::num_edges(self)
    }

    #[inline]
    fn label(&self, v: VertexId) -> Label {
        Graph::label(self, v)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        Graph::degree(self, v)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        Graph::neighbors(self, v)
    }

    #[inline]
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        Graph::has_edge(self, u, v)
    }

    fn nlf_entry(&self, _v: VertexId) -> &[(Label, u32)] {
        // The plain CSR graph has no precomputed NLF rows; callers that
        // need NLF pruning against a bare Graph should build an
        // `NlfIndex`. The incremental engine always runs against a
        // Snapshot, whose rows are patched incrementally.
        &[]
    }

    fn nlf_count(&self, v: VertexId, l: Label) -> u32 {
        Graph::count_neighbors_with_label(self, v, l) as u32
    }

    #[inline]
    fn label_frequency(&self, l: Label) -> usize {
        Graph::label_frequency(self, l)
    }

    #[inline]
    fn vertices_with_label(&self, l: Label) -> &[VertexId] {
        Graph::vertices_with_label(self, l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_graph::builder::graph_from_edges;

    #[test]
    fn graph_implements_the_view() {
        let g = graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let v: &dyn GraphView = &g;
        assert_eq!(v.num_vertices(), 3);
        assert_eq!(v.num_edges(), 2);
        assert_eq!(v.neighbors(1), &[0, 2]);
        assert!(v.has_edge(2, 1));
        assert!(!v.has_edge(0, 2));
        assert_eq!(v.nlf_count(1, 0), 2);
        assert_eq!(v.label_frequency(0), 2);
        assert_eq!(v.vertices_with_label(0), &[0, 2]);
    }
}
