//! Seeded update-stream generation for benchmarks and tests.
//!
//! [`UpdateStream`] turns a [`Snapshot`] of the current graph into the
//! next [`UpdateBatch`] of a synthetic workload: a seeded mix of edge
//! insertions (between existing live vertices), edge deletions (of
//! existing live edges) and occasional vertex additions. The same seed
//! and spec produce the same stream against the same evolving graph —
//! the reproducibility contract the `experiments update` harness and the
//! CI smoke rely on.

use crate::batch::UpdateBatch;
use crate::versioned::Snapshot;
use crate::view::GraphView;
use sm_graph::{Label, VertexId};
use sm_runtime::Rng64;

/// Shape of a synthetic update stream.
#[derive(Clone, Copy, Debug)]
pub struct UpdateStreamSpec {
    /// Operations per batch.
    pub batch_size: usize,
    /// Fraction of operations that insert an edge; the rest delete one.
    pub insert_ratio: f64,
    /// Probability that an insert grows a brand-new vertex (attached by
    /// the inserted edge) instead of connecting two existing vertices.
    pub vertex_add_ratio: f64,
    /// Label universe for newly added vertices.
    pub num_labels: usize,
}

impl Default for UpdateStreamSpec {
    fn default() -> Self {
        UpdateStreamSpec {
            batch_size: 16,
            insert_ratio: 0.8,
            vertex_add_ratio: 0.05,
            num_labels: 4,
        }
    }
}

/// A seeded generator of [`UpdateBatch`]es against an evolving graph.
pub struct UpdateStream {
    spec: UpdateStreamSpec,
    rng: Rng64,
}

impl UpdateStream {
    /// Create a stream with the given spec and seed.
    pub fn new(spec: UpdateStreamSpec, seed: u64) -> Self {
        UpdateStream {
            spec,
            rng: Rng64::seed_from_u64(seed),
        }
    }

    /// Pick a live (non-tombstoned) vertex, preferring a bounded number
    /// of rejection-sampling attempts.
    fn pick_live(&mut self, view: &Snapshot) -> Option<VertexId> {
        let n = view.num_vertices();
        if n == 0 {
            return None;
        }
        for _ in 0..32 {
            let v = self.rng.next_u64_below(n as u64) as VertexId;
            if !view.is_tombstoned(v) {
                return Some(v);
            }
        }
        None
    }

    /// Generate the next batch against `view` (the current graph state).
    ///
    /// Individual operations may still normalize away at commit time
    /// (e.g. an insert colliding with an existing edge); the stream
    /// over-samples candidates cheaply instead of guaranteeing
    /// effectiveness per op.
    pub fn next_batch(&mut self, view: &Snapshot) -> UpdateBatch {
        let mut batch = UpdateBatch::new();
        let mut new_vertices = 0u32;
        for _ in 0..self.spec.batch_size {
            if self.rng.gen_bool(self.spec.insert_ratio) {
                if self.rng.gen_bool(self.spec.vertex_add_ratio) {
                    // Grow: new vertex attached to a random live vertex.
                    let Some(u) = self.pick_live(view) else {
                        continue;
                    };
                    let label =
                        self.rng.next_u64_below(self.spec.num_labels.max(1) as u64) as Label;
                    let id = (view.num_vertices() + new_vertices as usize) as VertexId;
                    batch = batch.add_vertex(label).add_edge(u, id);
                    new_vertices += 1;
                } else {
                    // Connect two existing live vertices; retry a few
                    // times to find an absent pair.
                    for _ in 0..8 {
                        let (Some(u), Some(v)) = (self.pick_live(view), self.pick_live(view))
                        else {
                            break;
                        };
                        if u != v && !view.has_edge(u, v) {
                            batch = batch.add_edge(u, v);
                            break;
                        }
                    }
                }
            } else {
                // Delete a random live edge: random endpoint weighted by
                // rejection on degree, then a random neighbor.
                for _ in 0..8 {
                    let Some(u) = self.pick_live(view) else { break };
                    let d = view.degree(u);
                    if d == 0 {
                        continue;
                    }
                    let w = view.neighbors(u)[self.rng.next_u64_below(d as u64) as usize];
                    batch = batch.delete_edge(u, w);
                    break;
                }
            }
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::versioned::VersionedGraph;
    use sm_graph::gen::rmat::{rmat_graph, RmatParams};

    #[test]
    fn same_seed_same_stream() {
        let g = rmat_graph(200, 6.0, 3, RmatParams::PAPER, 7);
        let vg = VersionedGraph::new(g.clone());
        let spec = UpdateStreamSpec::default();
        let mut a = UpdateStream::new(spec, 42);
        let mut b = UpdateStream::new(spec, 42);
        let s = vg.snapshot();
        for _ in 0..5 {
            let ba = a.next_batch(&s);
            let bb = b.next_batch(&s);
            assert_eq!(ba.add_edges, bb.add_edges);
            assert_eq!(ba.delete_edges, bb.delete_edges);
            assert_eq!(ba.add_vertices, bb.add_vertices);
        }
        let mut c = UpdateStream::new(spec, 43);
        let bc = c.next_batch(&vg.snapshot());
        let ba = UpdateStream::new(spec, 42).next_batch(&vg.snapshot());
        assert_ne!(
            (ba.add_edges, ba.delete_edges),
            (bc.add_edges, bc.delete_edges),
            "different seeds diverge"
        );
    }

    #[test]
    fn stream_drives_commits_effectively() {
        let g = rmat_graph(300, 8.0, 4, RmatParams::PAPER, 11);
        let vg = VersionedGraph::new(g);
        let mut stream = UpdateStream::new(UpdateStreamSpec::default(), 9);
        let mut effective = 0usize;
        for _ in 0..20 {
            let batch = stream.next_batch(&vg.snapshot());
            let c = vg.commit(&batch);
            effective += c.info.edges_inserted.len() + c.info.edges_deleted.len();
        }
        assert!(
            effective > 50,
            "stream keeps mutating the graph: {effective}"
        );
        assert!(vg.epoch() > 0);
    }
}
