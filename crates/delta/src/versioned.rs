//! [`VersionedGraph`]: an immutable CSR base plus per-epoch overlays.
//!
//! # Layout
//!
//! The base is a plain [`sm_graph::Graph`] together with its
//! [`sm_graph::NlfIndex`], both built exactly once. Every committed
//! [`UpdateBatch`] produces a new *cumulative* overlay: copy-on-write maps
//! from vertex to patched adjacency / NLF row and from label to patched
//! label bucket, each value an `Arc` shared with the previous overlay
//! unless this commit touched it. A [`Snapshot`] is one `Arc` to one
//! overlay, so pinning an epoch is O(1) and every read is at most one
//! hash probe before falling through to the base arrays.
//!
//! # Incremental index maintenance
//!
//! Commits never rebuild an index. The label bucket of a label gains or
//! loses exactly the ids added/deleted under it; the NLF row of a vertex
//! is adjusted by the labels of the neighbors that arrived or left; all
//! untouched rows keep pointing into the base. Materializing a snapshot
//! back into CSR form (see [`Snapshot::materialize`]) likewise copies
//! untouched NLF rows instead of re-scanning adjacency.
//!
//! # Compaction
//!
//! When the overlay grows past a threshold (measured in delta edges plus
//! added vertices), the current view is folded into a fresh base and the
//! overlay resets to empty. Compaction changes no observable state —
//! snapshots taken earlier keep their old `Arc` and stay exactly
//! consistent. Tombstoned vertices survive compaction as isolated
//! vertices that keep their label but are excluded from label buckets,
//! so the view's semantics do not depend on how often compaction ran.

use crate::batch::UpdateBatch;
use crate::view::GraphView;
use sm_graph::{Graph, Label, NlfIndex, VertexId};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// The immutable foundation of a [`VersionedGraph`]: a CSR graph and its
/// NLF index, built once per compaction cycle.
struct Base {
    graph: Graph,
    nlf: NlfIndex,
}

/// One cumulative overlay over a [`Base`]. Immutable once published; a
/// [`Snapshot`] is an `Arc` to one of these.
pub(crate) struct LayerData {
    base: Arc<Base>,
    epoch: u64,
    /// Patched sorted adjacency per touched vertex (tombstones and
    /// vertices added after the base always have an entry).
    adj: HashMap<VertexId, Arc<Vec<VertexId>>>,
    /// Patched NLF rows, same key set as `adj`.
    nlf: HashMap<VertexId, Arc<Vec<(Label, u32)>>>,
    /// Patched label buckets (labels whose live-vertex set differs from
    /// the base, including every label with a tombstoned vertex).
    label_buckets: HashMap<Label, Arc<Vec<VertexId>>>,
    /// Labels of vertices added after the base (ids `base_n..`).
    added_labels: Arc<Vec<Label>>,
    /// Deleted vertex ids. Never reused; survive compaction.
    tombstones: Arc<HashSet<VertexId>>,
    num_edges: usize,
    /// `|E(view) Δ E(base)|` — the overlay's live edge footprint.
    delta_edges_live: usize,
}

impl LayerData {
    fn base_n(&self) -> usize {
        self.base.graph.num_vertices()
    }

    fn n(&self) -> usize {
        self.base_n() + self.added_labels.len()
    }

    fn is_tombstoned(&self, v: VertexId) -> bool {
        self.tombstones.contains(&v)
    }

    fn label_of(&self, v: VertexId) -> Label {
        let v = v as usize;
        if v < self.base_n() {
            self.base.graph.label(v as VertexId)
        } else {
            self.added_labels[v - self.base_n()]
        }
    }

    fn neighbors_of(&self, v: VertexId) -> &[VertexId] {
        if let Some(a) = self.adj.get(&v) {
            a
        } else if (v as usize) < self.base_n() {
            self.base.graph.neighbors(v)
        } else {
            &[]
        }
    }

    fn nlf_of(&self, v: VertexId) -> &[(Label, u32)] {
        if let Some(r) = self.nlf.get(&v) {
            r
        } else if (v as usize) < self.base_n() {
            self.base.nlf.entry(v)
        } else {
            &[]
        }
    }

    fn bucket(&self, l: Label) -> &[VertexId] {
        if let Some(b) = self.label_buckets.get(&l) {
            b
        } else {
            self.base.graph.vertices_with_label(l)
        }
    }

    fn has_edge_view(&self, u: VertexId, v: VertexId) -> bool {
        let (nu, nv) = (self.neighbors_of(u), self.neighbors_of(v));
        let (list, key) = if nu.len() <= nv.len() {
            (nu, v)
        } else {
            (nv, u)
        };
        list.binary_search(&key).is_ok()
    }
}

/// A pinned, immutable view of a [`VersionedGraph`] at one epoch.
///
/// Cloning is an `Arc` bump; every read goes through at most one hash
/// probe into the overlay before falling through to the base CSR. A
/// snapshot stays valid (and unchanged) across later commits and
/// compactions — this is what lets in-flight queries finish against a
/// consistent graph while updaters move the head forward.
#[derive(Clone)]
pub struct Snapshot {
    layer: Arc<LayerData>,
}

impl Snapshot {
    /// The epoch this snapshot pins.
    pub fn epoch(&self) -> u64 {
        self.layer.epoch
    }

    /// Whether vertex `v` has been deleted (degree 0, excluded from
    /// label buckets, id never reused).
    pub fn is_tombstoned(&self, v: VertexId) -> bool {
        self.layer.is_tombstoned(v)
    }

    /// The overlay's live edge footprint `|E(view) Δ E(base)|`.
    pub fn delta_edges_live(&self) -> usize {
        self.layer.delta_edges_live
    }

    /// Fold this view into a standalone CSR graph plus its NLF index.
    ///
    /// The graph keeps tombstoned vertices as isolated vertices carrying
    /// their original label, so vertex ids are stable; connected queries
    /// (degree ≥ 1 everywhere) cannot match them. The NLF index is
    /// assembled row-by-row from the view — untouched rows are copied
    /// from the base index rather than recomputed from adjacency.
    pub fn materialize(&self) -> (Graph, NlfIndex) {
        let layer = &*self.layer;
        let n = self.num_vertices();
        let base_n = layer.base_n();
        let (base_off, base_adj, base_labels) = layer.base.graph.csr();
        let (bn_off, bn_entries) = layer.base.nlf.csr();

        // Every per-vertex row of the view is already a sorted adjacency
        // slice (base CSR row or patched overlay row), so the CSR is
        // assembled by splicing: maximal runs of untouched base vertices
        // are bulk-copied, only patched rows are written individually.
        // With a small overlay this is a handful of memcpys over the base
        // arrays, which is what keeps installs, snapshot writes, and
        // recovery cheap.
        let mut touched: Vec<usize> = layer
            .adj
            .keys()
            .map(|&v| v as usize)
            .filter(|&v| v < base_n)
            .collect();
        touched.sort_unstable();

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut neighbors = Vec::with_capacity(layer.num_edges * 2);
        let mut nlf_offsets = Vec::with_capacity(n + 1);
        nlf_offsets.push(0usize);
        let mut entries: Vec<(Label, u32)> = Vec::with_capacity(bn_entries.len() + 64);

        // Bulk-copy the untouched base run [a, b): row contents are
        // identical, so the new offsets are the base offsets plus however
        // far this view has drifted from the base so far.
        let copy_run = |a: usize,
                        b: usize,
                        offsets: &mut Vec<usize>,
                        neighbors: &mut Vec<VertexId>,
                        nlf_offsets: &mut Vec<usize>,
                        entries: &mut Vec<(Label, u32)>| {
            if a >= b {
                return;
            }
            let shift = neighbors.len().wrapping_sub(base_off[a]);
            neighbors.extend_from_slice(&base_adj[base_off[a]..base_off[b]]);
            offsets.extend(base_off[a + 1..=b].iter().map(|&o| o.wrapping_add(shift)));
            let nshift = entries.len().wrapping_sub(bn_off[a]);
            entries.extend_from_slice(&bn_entries[bn_off[a]..bn_off[b]]);
            nlf_offsets.extend(bn_off[a + 1..=b].iter().map(|&o| o.wrapping_add(nshift)));
        };

        let mut prev = 0usize;
        for &t in &touched {
            copy_run(
                prev,
                t,
                &mut offsets,
                &mut neighbors,
                &mut nlf_offsets,
                &mut entries,
            );
            neighbors.extend_from_slice(layer.neighbors_of(t as VertexId));
            offsets.push(neighbors.len());
            entries.extend_from_slice(layer.nlf_of(t as VertexId));
            nlf_offsets.push(entries.len());
            prev = t + 1;
        }
        copy_run(
            prev,
            base_n,
            &mut offsets,
            &mut neighbors,
            &mut nlf_offsets,
            &mut entries,
        );
        for v in base_n..n {
            neighbors.extend_from_slice(layer.neighbors_of(v as VertexId));
            offsets.push(neighbors.len());
            entries.extend_from_slice(layer.nlf_of(v as VertexId));
            nlf_offsets.push(entries.len());
        }

        let mut labels = Vec::with_capacity(n);
        labels.extend_from_slice(base_labels);
        labels.extend_from_slice(&layer.added_labels);
        let g = Graph::from_csr_unchecked(offsets, neighbors, labels);
        let nlf = NlfIndex::from_csr_unchecked(nlf_offsets, entries);
        (g, nlf)
    }
}

impl GraphView for Snapshot {
    fn num_vertices(&self) -> usize {
        self.layer.n()
    }

    fn num_edges(&self) -> usize {
        self.layer.num_edges
    }

    fn label(&self, v: VertexId) -> Label {
        self.layer.label_of(v)
    }

    fn degree(&self, v: VertexId) -> usize {
        self.layer.neighbors_of(v).len()
    }

    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.layer.neighbors_of(v)
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.layer.has_edge_view(u, v)
    }

    fn nlf_entry(&self, v: VertexId) -> &[(Label, u32)] {
        self.layer.nlf_of(v)
    }

    fn label_frequency(&self, l: Label) -> usize {
        self.layer.bucket(l).len()
    }

    fn vertices_with_label(&self, l: Label) -> &[VertexId] {
        self.layer.bucket(l)
    }
}

/// What one [`VersionedGraph::commit`] actually changed, after
/// normalization (no-ops dropped, vertex deletions expanded into their
/// incident edge deletions, delete+insert pairs cancelled).
#[derive(Clone, Debug)]
pub struct CommitInfo {
    /// Epoch of the post-commit view.
    pub epoch: u64,
    /// Ids assigned to the vertices added by this batch, in batch order.
    pub vertices_added: Vec<VertexId>,
    /// Vertices tombstoned by this batch (sorted).
    pub vertices_deleted: Vec<VertexId>,
    /// Edges that exist after but not before, as `(min, max)`, sorted.
    pub edges_inserted: Vec<(VertexId, VertexId)>,
    /// Edges that exist before but not after, as `(min, max)`, sorted.
    pub edges_deleted: Vec<(VertexId, VertexId)>,
    /// Sorted labels touched by the batch: labels of added/deleted
    /// vertices and of the endpoints of inserted/deleted edges. A cached
    /// plan whose query labels are disjoint from this set is unaffected
    /// by the commit.
    pub affected_labels: Vec<Label>,
}

impl CommitInfo {
    /// Whether the batch changed nothing after normalization.
    pub fn is_noop(&self) -> bool {
        self.vertices_added.is_empty()
            && self.vertices_deleted.is_empty()
            && self.edges_inserted.is_empty()
            && self.edges_deleted.is_empty()
    }
}

/// The result of a commit: the view just before, the view just after,
/// and the normalized delta between them — exactly what the incremental
/// enumeration in [`crate::incremental`] consumes.
pub struct Committed {
    /// View at the pre-commit epoch.
    pub pre: Snapshot,
    /// View at the post-commit epoch.
    pub post: Snapshot,
    /// The normalized delta.
    pub info: CommitInfo,
}

/// Point-in-time statistics of a [`VersionedGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VersionedStats {
    /// Current epoch (bumped by every effective commit).
    pub epoch: u64,
    /// Total vertex ids (live + tombstoned).
    pub num_vertices: usize,
    /// Live undirected edges.
    pub num_edges: usize,
    /// Tombstoned vertex count.
    pub tombstones: usize,
    /// `|E(view) Δ E(base)|` of the current overlay.
    pub delta_edges_live: usize,
    /// Commits applied (effective ones — no-op batches don't count).
    pub commits: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Snapshots handed out via [`VersionedGraph::snapshot`].
    pub snapshots_pinned: u64,
}

struct Inner {
    layer: Arc<LayerData>,
    commits: u64,
    compactions: u64,
    snapshots_pinned: u64,
}

/// A dynamic graph: immutable CSR base, per-epoch overlays, snapshot
/// isolation, and threshold-triggered compaction.
///
/// Single writer (commits serialize on an internal lock), any number of
/// concurrent readers via [`VersionedGraph::snapshot`].
pub struct VersionedGraph {
    inner: Mutex<Inner>,
    threshold: usize,
}

fn norm(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

impl VersionedGraph {
    /// Wrap `graph` as epoch 0 with the default compaction threshold
    /// (`max(1024, |E|/4)` overlay entries).
    pub fn new(graph: Graph) -> Self {
        let threshold = (graph.num_edges() / 4).max(1024);
        Self::with_threshold(graph, threshold)
    }

    /// Wrap `graph` with an explicit compaction threshold: the overlay is
    /// folded into a fresh base whenever `delta_edges_live + added
    /// vertices` exceeds `threshold` after a commit.
    pub fn with_threshold(graph: Graph, threshold: usize) -> Self {
        let nlf = graph.build_nlf();
        let num_edges = graph.num_edges();
        let layer = LayerData {
            base: Arc::new(Base { graph, nlf }),
            epoch: 0,
            adj: HashMap::new(),
            nlf: HashMap::new(),
            label_buckets: HashMap::new(),
            added_labels: Arc::new(Vec::new()),
            tombstones: Arc::new(HashSet::new()),
            num_edges,
            delta_edges_live: 0,
        };
        VersionedGraph {
            inner: Mutex::new(Inner {
                layer: Arc::new(layer),
                commits: 0,
                compactions: 0,
                snapshots_pinned: 0,
            }),
            threshold,
        }
    }

    /// Wrap an already-materialized CSR + NLF pair as epoch 0 — the
    /// recovery path of `sm-durable`, where the snapshot file stores both
    /// arrays and neither index should be recomputed. Uses the default
    /// compaction threshold.
    pub fn from_materialized(graph: Graph, nlf: NlfIndex) -> Self {
        let threshold = (graph.num_edges() / 4).max(1024);
        let num_edges = graph.num_edges();
        let layer = LayerData {
            base: Arc::new(Base { graph, nlf }),
            epoch: 0,
            adj: HashMap::new(),
            nlf: HashMap::new(),
            label_buckets: HashMap::new(),
            added_labels: Arc::new(Vec::new()),
            tombstones: Arc::new(HashSet::new()),
            num_edges,
            delta_edges_live: 0,
        };
        VersionedGraph {
            inner: Mutex::new(Inner {
                layer: Arc::new(layer),
                commits: 0,
                compactions: 0,
                snapshots_pinned: 0,
            }),
            threshold,
        }
    }

    /// Materialize the current head into a standalone CSR graph and NLF
    /// index without pinning a snapshot — the export hook the durability
    /// layer uses when writing an on-disk snapshot. Returns the head
    /// epoch alongside the folded arrays; `snapshots_pinned` is not
    /// bumped because nothing stays pinned after the fold.
    pub fn export_head(&self) -> (u64, Graph, NlfIndex) {
        let layer = self.inner.lock().unwrap().layer.clone();
        let epoch = layer.epoch;
        let (graph, nlf) = Snapshot { layer }.materialize();
        (epoch, graph, nlf)
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().unwrap().layer.epoch
    }

    /// Pin the current epoch. O(1); the snapshot stays consistent across
    /// later commits and compactions.
    pub fn snapshot(&self) -> Snapshot {
        let mut inner = self.inner.lock().unwrap();
        inner.snapshots_pinned += 1;
        Snapshot {
            layer: inner.layer.clone(),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> VersionedStats {
        let inner = self.inner.lock().unwrap();
        VersionedStats {
            epoch: inner.layer.epoch,
            num_vertices: inner.layer.n(),
            num_edges: inner.layer.num_edges,
            tombstones: inner.layer.tombstones.len(),
            delta_edges_live: inner.layer.delta_edges_live,
            commits: inner.commits,
            compactions: inner.compactions,
            snapshots_pinned: inner.snapshots_pinned,
        }
    }

    /// Fold the current overlay into a fresh base now, regardless of the
    /// threshold. Returns `false` if the overlay was already empty.
    pub fn compact(&self) -> bool {
        let mut inner = self.inner.lock().unwrap();
        if inner.layer.delta_edges_live == 0 && inner.layer.added_labels.is_empty() {
            return false;
        }
        Self::compact_locked(&mut inner);
        true
    }

    fn compact_locked(inner: &mut Inner) {
        let snap = Snapshot {
            layer: inner.layer.clone(),
        };
        let (graph, nlf) = snap.materialize();
        let tombstones = inner.layer.tombstones.clone();
        // Tombstones persist as isolated vertices in the new base, whose
        // label index therefore includes them; re-patch their buckets so
        // the view's label buckets stay tombstone-free across compaction.
        let tomb_labels: BTreeSet<Label> = tombstones.iter().map(|&v| graph.label(v)).collect();
        let mut label_buckets = HashMap::new();
        for l in tomb_labels {
            let b: Vec<VertexId> = graph
                .vertices_with_label(l)
                .iter()
                .copied()
                .filter(|v| !tombstones.contains(v))
                .collect();
            label_buckets.insert(l, Arc::new(b));
        }
        let num_edges = graph.num_edges();
        inner.layer = Arc::new(LayerData {
            base: Arc::new(Base { graph, nlf }),
            epoch: inner.layer.epoch,
            adj: HashMap::new(),
            nlf: HashMap::new(),
            label_buckets,
            added_labels: Arc::new(Vec::new()),
            tombstones,
            num_edges,
            delta_edges_live: 0,
        });
        inner.compactions += 1;
    }

    /// Commit `batch` atomically, producing the next epoch.
    ///
    /// Normalization: vertex additions first (ids assigned densely from
    /// the current count), then edge deletions — explicit ones plus every
    /// edge incident to a deleted vertex — then edge insertions.
    /// Self-loops, duplicates, deletions of absent edges, insertions of
    /// present edges, edges referencing tombstoned or out-of-range
    /// endpoints, and delete+insert pairs of the same present edge all
    /// normalize away. A batch that changes nothing returns with
    /// `pre`/`post` at the same epoch and an empty [`CommitInfo`].
    pub fn commit(&self, batch: &UpdateBatch) -> Committed {
        let mut inner = self.inner.lock().unwrap();
        let pre = Snapshot {
            layer: inner.layer.clone(),
        };
        let old = &pre.layer;
        let base_n = old.base_n();
        let n0 = old.n();

        // Vertex additions: ids n0..n0+k in batch order.
        let vertices_added: Vec<VertexId> = (0..batch.add_vertices.len())
            .map(|i| (n0 + i) as VertexId)
            .collect();
        let n1 = n0 + vertices_added.len();

        // Vertex deletions: existing, live, deduplicated.
        let mut vertices_deleted: Vec<VertexId> = batch
            .delete_vertices
            .iter()
            .copied()
            .filter(|&v| (v as usize) < n0 && !old.is_tombstoned(v))
            .collect();
        vertices_deleted.sort_unstable();
        vertices_deleted.dedup();
        let del_verts: HashSet<VertexId> = vertices_deleted.iter().copied().collect();

        // Edge deletions: explicit ones that exist, plus all edges
        // incident to a deleted vertex.
        let mut deleted: HashSet<(VertexId, VertexId)> = HashSet::new();
        for &(u, v) in &batch.delete_edges {
            if u == v {
                continue;
            }
            let e = norm(u, v);
            if (e.1 as usize) < n0 && old.has_edge_view(e.0, e.1) {
                deleted.insert(e);
            }
        }
        for &v in &vertices_deleted {
            for &w in old.neighbors_of(v) {
                deleted.insert(norm(v, w));
            }
        }

        // Edge insertions: live endpoints, not already present after the
        // deletions above. A delete+insert pair of a present edge cancels.
        let mut inserted: Vec<(VertexId, VertexId)> = Vec::new();
        let mut ins_seen: HashSet<(VertexId, VertexId)> = HashSet::new();
        for &(u, v) in &batch.add_edges {
            if u == v {
                continue;
            }
            let e = norm(u, v);
            if (e.1 as usize) >= n1
                || del_verts.contains(&e.0)
                || del_verts.contains(&e.1)
                || old.is_tombstoned(e.0)
                || old.is_tombstoned(e.1)
                || !ins_seen.insert(e)
            {
                continue;
            }
            if deleted.remove(&e) {
                continue; // present, deleted, re-inserted: net no-op
            }
            if (e.1 as usize) < n0 && old.has_edge_view(e.0, e.1) {
                continue;
            }
            inserted.push(e);
        }
        let mut edges_deleted: Vec<(VertexId, VertexId)> = deleted.into_iter().collect();
        edges_deleted.sort_unstable();
        inserted.sort_unstable();
        let edges_inserted = inserted;

        if vertices_added.is_empty()
            && vertices_deleted.is_empty()
            && edges_inserted.is_empty()
            && edges_deleted.is_empty()
        {
            let info = CommitInfo {
                epoch: old.epoch,
                vertices_added,
                vertices_deleted,
                edges_inserted,
                edges_deleted,
                affected_labels: Vec::new(),
            };
            return Committed {
                post: pre.clone(),
                pre,
                info,
            };
        }

        // --- Apply: copy-on-write per touched vertex / label. ---
        let mut adj = old.adj.clone();
        let mut nlf = old.nlf.clone();
        let mut label_buckets = old.label_buckets.clone();

        let added_labels: Arc<Vec<Label>> = if batch.add_vertices.is_empty() {
            old.added_labels.clone()
        } else {
            let mut a = (*old.added_labels).clone();
            a.extend(batch.add_vertices.iter().copied());
            Arc::new(a)
        };
        let tombstones: Arc<HashSet<VertexId>> = if vertices_deleted.is_empty() {
            old.tombstones.clone()
        } else {
            let mut t = (*old.tombstones).clone();
            t.extend(vertices_deleted.iter().copied());
            Arc::new(t)
        };

        let label_of = |w: VertexId| -> Label {
            if (w as usize) < base_n {
                old.base.graph.label(w)
            } else {
                added_labels[(w as usize) - base_n]
            }
        };

        // Per-vertex adjacency deltas from the effective edge sets.
        let mut touched: BTreeMap<VertexId, (Vec<VertexId>, Vec<VertexId>)> = BTreeMap::new();
        for &(u, v) in &edges_inserted {
            touched.entry(u).or_default().0.push(v);
            touched.entry(v).or_default().0.push(u);
        }
        for &(u, v) in &edges_deleted {
            touched.entry(u).or_default().1.push(v);
            touched.entry(v).or_default().1.push(u);
        }
        // Added and deleted vertices get explicit (possibly empty) rows.
        for &v in vertices_added.iter().chain(&vertices_deleted) {
            touched.entry(v).or_default();
        }

        for (&v, (add, rem)) in &touched {
            let mut list: Vec<VertexId> = if (v as usize) < n0 {
                old.neighbors_of(v).to_vec()
            } else {
                Vec::new()
            };
            if !rem.is_empty() {
                let rs: HashSet<VertexId> = rem.iter().copied().collect();
                list.retain(|w| !rs.contains(w));
            }
            list.extend(add.iter().copied());
            list.sort_unstable();
            // Incremental NLF maintenance: adjust this row by the labels
            // of the neighbors that arrived or left.
            let old_row = if (v as usize) < n0 {
                old.nlf_of(v)
            } else {
                &[]
            };
            let mut counts: BTreeMap<Label, i64> =
                old_row.iter().map(|&(l, c)| (l, c as i64)).collect();
            for &w in add.iter() {
                *counts.entry(label_of(w)).or_insert(0) += 1;
            }
            for &w in rem.iter() {
                *counts.entry(label_of(w)).or_insert(0) -= 1;
            }
            let row: Vec<(Label, u32)> = counts
                .into_iter()
                .filter(|&(_, c)| c > 0)
                .map(|(l, c)| (l, c as u32))
                .collect();
            adj.insert(v, Arc::new(list));
            nlf.insert(v, Arc::new(row));
        }

        // Label buckets: append added ids (always larger than any live
        // id, so buckets stay sorted), drop deleted ids.
        let mut bucket_add: BTreeMap<Label, Vec<VertexId>> = BTreeMap::new();
        for (i, &l) in batch.add_vertices.iter().enumerate() {
            bucket_add.entry(l).or_default().push((n0 + i) as VertexId);
        }
        let mut bucket_del: BTreeMap<Label, HashSet<VertexId>> = BTreeMap::new();
        for &v in &vertices_deleted {
            bucket_del.entry(label_of(v)).or_default().insert(v);
        }
        let bucket_labels: BTreeSet<Label> = bucket_add
            .keys()
            .chain(bucket_del.keys())
            .copied()
            .collect();
        for l in bucket_labels {
            let mut b: Vec<VertexId> = old.bucket(l).to_vec();
            if let Some(dead) = bucket_del.get(&l) {
                b.retain(|v| !dead.contains(v));
            }
            if let Some(new_ids) = bucket_add.get(&l) {
                b.extend(new_ids.iter().copied());
            }
            label_buckets.insert(l, Arc::new(b));
        }

        // Overlay footprint relative to the base.
        let in_base = |e: (VertexId, VertexId)| -> bool {
            (e.1 as usize) < base_n && old.base.graph.has_edge(e.0, e.1)
        };
        let mut dl = old.delta_edges_live as i64;
        for &e in &edges_inserted {
            dl += if in_base(e) { -1 } else { 1 };
        }
        for &e in &edges_deleted {
            dl += if in_base(e) { 1 } else { -1 };
        }
        debug_assert!(dl >= 0);

        let affected_labels: BTreeSet<Label> = batch
            .add_vertices
            .iter()
            .copied()
            .chain(vertices_deleted.iter().map(|&v| label_of(v)))
            .chain(
                edges_inserted
                    .iter()
                    .chain(&edges_deleted)
                    .flat_map(|&(u, v)| [label_of(u), label_of(v)]),
            )
            .collect();

        let epoch = old.epoch + 1;
        let num_edges = old.num_edges + edges_inserted.len() - edges_deleted.len();
        let new_layer = Arc::new(LayerData {
            base: old.base.clone(),
            epoch,
            adj,
            nlf,
            label_buckets,
            added_labels,
            tombstones,
            num_edges,
            delta_edges_live: dl as usize,
        });
        let post = Snapshot {
            layer: new_layer.clone(),
        };
        inner.layer = new_layer;
        inner.commits += 1;

        let overlay = inner.layer.delta_edges_live + inner.layer.added_labels.len();
        if overlay > self.threshold {
            Self::compact_locked(&mut inner);
        }

        Committed {
            pre,
            post,
            info: CommitInfo {
                epoch,
                vertices_added,
                vertices_deleted,
                edges_inserted,
                edges_deleted,
                affected_labels: affected_labels.into_iter().collect(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_graph::builder::graph_from_edges;

    fn path4() -> Graph {
        // 0 - 1 - 2 - 3, labels A B A B
        graph_from_edges(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn edge_insert_updates_view_and_indexes() {
        let vg = VersionedGraph::new(path4());
        let c = vg.commit(&UpdateBatch::new().add_edge(0, 3));
        assert_eq!(c.info.edges_inserted, vec![(0, 3)]);
        assert!(c.info.edges_deleted.is_empty());
        let s = vg.snapshot();
        assert_eq!(s.epoch(), 1);
        assert!(s.has_edge(0, 3));
        assert_eq!(s.num_edges(), 4);
        assert_eq!(s.neighbors(0), &[1, 3]);
        assert_eq!(s.neighbors(3), &[0, 2]);
        // NLF rows patched incrementally: 0 gained a B neighbor.
        assert_eq!(s.nlf_entry(0), &[(1, 2)]);
        assert_eq!(s.nlf_entry(3), &[(0, 2)]);
        // Pre-commit view unchanged.
        assert!(!c.pre.has_edge(0, 3));
        assert_eq!(c.pre.nlf_entry(0), &[(1, 1)]);
        assert_eq!(c.info.affected_labels, vec![0, 1]);
    }

    #[test]
    fn edge_delete_and_noop_normalization() {
        let vg = VersionedGraph::new(path4());
        let c = vg.commit(
            &UpdateBatch::new()
                .delete_edge(2, 1) // present (normalized to (1,2))
                .delete_edge(0, 3) // absent: no-op
                .add_edge(0, 1) // present: no-op
                .add_edge(1, 1) // self-loop: no-op
                .add_edge(0, 99), // out of range: no-op
        );
        assert_eq!(c.info.edges_deleted, vec![(1, 2)]);
        assert!(c.info.edges_inserted.is_empty());
        let s = vg.snapshot();
        assert!(!s.has_edge(1, 2));
        assert_eq!(s.num_edges(), 2);
        assert_eq!(s.nlf_entry(1), &[(0, 1)]);
    }

    #[test]
    fn delete_insert_pair_cancels() {
        let vg = VersionedGraph::new(path4());
        let c = vg.commit(&UpdateBatch::new().delete_edge(0, 1).add_edge(1, 0));
        assert!(c.info.is_noop());
        assert_eq!(vg.epoch(), 0, "no-op batches do not bump the epoch");
        assert!(vg.snapshot().has_edge(0, 1));
    }

    #[test]
    fn vertex_add_gets_dense_ids_and_bucket() {
        let vg = VersionedGraph::new(path4());
        let c = vg.commit(
            &UpdateBatch::new()
                .add_vertex(0)
                .add_vertex(2)
                .add_edge(4, 1),
        );
        assert_eq!(c.info.vertices_added, vec![4, 5]);
        let s = vg.snapshot();
        assert_eq!(s.num_vertices(), 6);
        assert_eq!(s.label(4), 0);
        assert_eq!(s.label(5), 2);
        assert_eq!(s.vertices_with_label(0), &[0, 2, 4]);
        assert_eq!(s.vertices_with_label(2), &[5]);
        assert_eq!(s.label_frequency(2), 1);
        assert_eq!(s.neighbors(4), &[1]);
        assert_eq!(s.degree(5), 0);
        assert_eq!(s.nlf_entry(4), &[(1, 1)]);
        // vertex 1 gained an A neighbor
        assert_eq!(s.nlf_entry(1), &[(0, 3)]);
    }

    #[test]
    fn vertex_delete_tombstones_and_drops_incident_edges() {
        let vg = VersionedGraph::new(path4());
        let c = vg.commit(&UpdateBatch::new().delete_vertex(1));
        assert_eq!(c.info.vertices_deleted, vec![1]);
        assert_eq!(c.info.edges_deleted, vec![(0, 1), (1, 2)]);
        let s = vg.snapshot();
        assert!(s.is_tombstoned(1));
        assert_eq!(s.num_vertices(), 4, "ids are stable");
        assert_eq!(s.degree(1), 0);
        assert!(s.neighbors(1).is_empty());
        assert_eq!(s.vertices_with_label(1), &[3]);
        assert_eq!(s.num_edges(), 1);
        assert_eq!(s.nlf_entry(0), &[] as &[(Label, u32)]);
        // Edges to a tombstone are rejected.
        let c2 = vg.commit(&UpdateBatch::new().add_edge(0, 1));
        assert!(c2.info.is_noop());
    }

    #[test]
    fn snapshots_pin_their_epoch() {
        let vg = VersionedGraph::new(path4());
        let s0 = vg.snapshot();
        vg.commit(&UpdateBatch::new().delete_edge(0, 1).add_edge(0, 2));
        let s1 = vg.snapshot();
        assert_eq!((s0.epoch(), s1.epoch()), (0, 1));
        assert!(s0.has_edge(0, 1) && !s0.has_edge(0, 2));
        assert!(!s1.has_edge(0, 1) && s1.has_edge(0, 2));
        assert_eq!(s0.num_edges(), 3);
        assert_eq!(s1.num_edges(), 3);
    }

    #[test]
    fn materialize_round_trips() {
        let vg = VersionedGraph::new(path4());
        vg.commit(
            &UpdateBatch::new()
                .add_vertex(1)
                .add_edge(4, 0)
                .add_edge(4, 2)
                .delete_edge(1, 2),
        );
        let s = vg.snapshot();
        let (g, nlf) = s.materialize();
        assert_eq!(g.num_vertices(), s.num_vertices());
        assert_eq!(g.num_edges(), s.num_edges());
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(g.neighbors(v), s.neighbors(v));
            assert_eq!(g.label(v), s.label(v));
            assert_eq!(nlf.entry(v), s.nlf_entry(v));
        }
        let fresh = g.build_nlf();
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(nlf.entry(v), fresh.entry(v));
        }
    }

    #[test]
    fn compaction_preserves_the_view() {
        let vg = VersionedGraph::with_threshold(path4(), 2);
        // 3 delta edges + 1 added vertex > 2 → compacts.
        let c = vg.commit(
            &UpdateBatch::new()
                .add_vertex(0)
                .add_edge(4, 1)
                .add_edge(0, 2)
                .delete_edge(2, 3),
        );
        let st = vg.stats();
        assert_eq!(st.compactions, 1);
        assert_eq!(st.delta_edges_live, 0);
        let s = vg.snapshot();
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.num_vertices(), 5);
        assert!(s.has_edge(4, 1) && s.has_edge(0, 2) && !s.has_edge(2, 3));
        // The post snapshot from before compaction agrees exactly.
        for v in 0..5 {
            assert_eq!(s.neighbors(v), c.post.neighbors(v));
            assert_eq!(s.nlf_entry(v), c.post.nlf_entry(v));
        }
    }

    #[test]
    fn compaction_keeps_tombstones_out_of_buckets() {
        let vg = VersionedGraph::with_threshold(path4(), 1);
        vg.commit(&UpdateBatch::new().delete_vertex(0).add_edge(1, 3));
        let st = vg.stats();
        assert_eq!(st.compactions, 1);
        let s = vg.snapshot();
        assert!(s.is_tombstoned(0));
        assert_eq!(s.vertices_with_label(0), &[2]);
        assert_eq!(s.label_frequency(0), 1);
        assert_eq!(s.label(0), 0, "tombstones keep their label");
        // Still cannot connect to a tombstone after compaction.
        assert!(vg.commit(&UpdateBatch::new().add_edge(0, 2)).info.is_noop());
    }

    #[test]
    fn forced_compact_and_stats() {
        let vg = VersionedGraph::new(path4());
        assert!(!vg.compact(), "empty overlay: nothing to fold");
        vg.commit(&UpdateBatch::new().add_edge(0, 3));
        let _ = vg.snapshot();
        assert!(vg.compact());
        let st = vg.stats();
        assert_eq!(st.epoch, 1);
        assert_eq!(st.commits, 1);
        assert_eq!(st.compactions, 1);
        assert_eq!(st.snapshots_pinned, 1);
        assert_eq!(st.delta_edges_live, 0);
        assert_eq!(st.num_edges, 4);
    }
}
