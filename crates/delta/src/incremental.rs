//! Delta-driven incremental enumeration for standing queries.
//!
//! A from-scratch run touches the whole data graph; after a small update
//! batch, almost all of that work re-derives embeddings that did not
//! change. The incremental engine instead *seeds* the search from the
//! delta: every embedding affected by the batch must map some query edge
//! onto some inserted (or deleted) data edge, so it is reachable by
//! pinning that query edge to that data edge and completing the partial
//! embedding outward.
//!
//! For each undirected query edge a [`SeedProgram`] fixes the matching
//! order — the edge's endpoints first, then the remaining query vertices
//! in BFS order with their backward checks precomputed. Programs are
//! derived once per [`StandingQuery`] and reused for every batch; the
//! per-batch work is `O(Σ affected-subtree sizes)` instead of `O(full
//! search)`.
//!
//! # Exactly-once accounting
//!
//! An embedding can use several delta edges, and one delta edge can be
//! the image of any query edge — naively seeding every (delta edge ×
//! program) pair would report duplicates. Two rules make the count exact:
//!
//! 1. distinct query edges of one embedding always map to *distinct* data
//!    edges (the vertex map is injective), so within one seed edge each
//!    embedding is produced by exactly one program in exactly one
//!    orientation;
//! 2. an embedding using several delta edges is attributed to the
//!    *smallest-index* one: while extending from seed edge `i`, any
//!    branch whose checked data edge is a delta edge with index `< i` is
//!    pruned — the embedding is (or was) found from that smaller seed.
//!
//! Inserted edges are enumerated on the post-commit snapshot (new
//! embeddings), deleted edges on the pre-commit snapshot (retracted
//! embeddings); `matches(G') = matches(G) − removed + added` as sets.

use crate::versioned::{Committed, Snapshot};
use crate::view::GraphView;
use sm_graph::types::NO_VERTEX;
use sm_graph::{Graph, NlfIndex, VertexId};
use sm_match::QueryPlan;
use sm_runtime::{morsel_size_for, MorselQueue};
use std::collections::HashMap;
use std::sync::Arc;

/// The per-query-edge matching program of a [`StandingQuery`]: the seed
/// edge's endpoints, then the remaining query vertices in BFS order with
/// pivot and backward checks resolved to order positions.
#[derive(Clone, Debug)]
struct SeedProgram {
    /// Query endpoints of the pinned edge (`order[0]`, `order[1]`).
    u1: VertexId,
    u2: VertexId,
    /// Matching order: `[u1, u2, BFS over the rest]`.
    order: Vec<VertexId>,
    /// For position `k >= 2`: position (index into `order`) of the
    /// already-placed query neighbor whose data image is expanded.
    pivot: Vec<usize>,
    /// For position `k >= 2`: positions of the other already-placed query
    /// neighbors, each checked as a backward edge.
    backward: Vec<Vec<usize>>,
}

impl SeedProgram {
    fn derive(q: &Graph, u1: VertexId, u2: VertexId) -> SeedProgram {
        let n = q.num_vertices();
        let mut order = Vec::with_capacity(n);
        order.push(u1);
        order.push(u2);
        let mut placed = vec![false; n];
        placed[u1 as usize] = true;
        placed[u2 as usize] = true;
        let mut head = 0;
        while head < order.len() {
            let u = order[head];
            head += 1;
            for &w in q.neighbors(u) {
                if !placed[w as usize] {
                    placed[w as usize] = true;
                    order.push(w);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "query must be connected");
        let mut pivot = Vec::with_capacity(n.saturating_sub(2));
        let mut backward = Vec::with_capacity(n.saturating_sub(2));
        for k in 2..n {
            let u = order[k];
            let mut placed_nbrs: Vec<usize> = (0..k).filter(|&j| q.has_edge(order[j], u)).collect();
            debug_assert!(!placed_nbrs.is_empty(), "BFS order keeps connectivity");
            pivot.push(placed_nbrs.remove(0));
            backward.push(placed_nbrs);
        }
        SeedProgram {
            u1,
            u2,
            order,
            pivot,
            backward,
        }
    }
}

/// A query registered for incremental maintenance: the compiled
/// [`QueryPlan`] (shared with the static path), the query's NLF rows, and
/// one [`SeedProgram`] per query edge — all derived once and reused for
/// every committed batch.
pub struct StandingQuery {
    plan: Arc<QueryPlan>,
    qnlf: NlfIndex,
    programs: Vec<SeedProgram>,
}

impl StandingQuery {
    /// Derive the seed programs for `plan`'s query. Returns `None` for
    /// queries the incremental engine does not support: edgeless or
    /// disconnected ones (callers fall back to full recomputation).
    pub fn new(plan: Arc<QueryPlan>) -> Option<StandingQuery> {
        let q = plan.query();
        if q.num_edges() == 0 || !q.is_connected() {
            return None;
        }
        let qnlf = q.build_nlf();
        let programs = q
            .edges()
            .map(|(u, v)| SeedProgram::derive(q, u, v))
            .collect();
        Some(StandingQuery {
            plan,
            qnlf,
            programs,
        })
    }

    /// The shared compiled plan.
    pub fn plan(&self) -> &Arc<QueryPlan> {
        &self.plan
    }

    /// Number of seed programs (= query edges).
    pub fn num_programs(&self) -> usize {
        self.programs.len()
    }
}

/// The output of [`delta_matches`]: embeddings (indexed by query vertex
/// id, like [`sm_match::enumerate::CollectSink`]) that a batch added and
/// removed. Both lists are sorted lexicographically and duplicate-free.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaMatches {
    /// Embeddings of the post-commit graph using ≥ 1 inserted edge.
    pub added: Vec<Vec<VertexId>>,
    /// Embeddings of the pre-commit graph using ≥ 1 deleted edge.
    pub removed: Vec<Vec<VertexId>>,
}

impl DeltaMatches {
    /// `added.len() + removed.len()`.
    pub fn total(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Apply this delta to a sorted, duplicate-free embedding set,
    /// returning the maintained set (also sorted).
    pub fn apply_to(&self, current: &[Vec<VertexId>]) -> Vec<Vec<VertexId>> {
        let mut out: Vec<Vec<VertexId>> = Vec::with_capacity(
            current.len() + self.added.len() - self.removed.len().min(current.len()),
        );
        let mut rem = self.removed.iter().peekable();
        for m in current {
            while rem.peek().is_some_and(|r| *r < m) {
                rem.next();
            }
            if rem.peek().is_some_and(|r| *r == m) {
                rem.next();
                continue;
            }
            out.push(m.clone());
        }
        out.extend(self.added.iter().cloned());
        out.sort_unstable();
        out
    }
}

/// One enumeration side (inserted edges on the post view, or deleted
/// edges on the pre view).
struct SeedRun<'a> {
    view: &'a Snapshot,
    q: &'a Graph,
    qnlf: &'a NlfIndex,
    /// Delta edge → index, for the smallest-index attribution rule.
    edge_index: &'a HashMap<(VertexId, VertexId), usize>,
}

impl<'a> SeedRun<'a> {
    #[inline]
    fn delta_index(&self, a: VertexId, b: VertexId) -> Option<usize> {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.edge_index.get(&key).copied()
    }

    /// Label + degree + NLF-dominance check of data vertex `v` against
    /// query vertex `u`.
    #[inline]
    fn vertex_ok(&self, u: VertexId, v: VertexId) -> bool {
        self.view.label(v) == self.q.label(u)
            && self.view.degree(v) >= self.q.degree(u)
            && NlfIndex::dominates(self.view.nlf_entry(v), self.qnlf.entry(u))
    }

    /// Enumerate all embeddings through seed edge `eidx` under `prog`,
    /// both orientations, appending to `out`.
    fn run_seed(
        &self,
        prog: &SeedProgram,
        eidx: usize,
        a: VertexId,
        b: VertexId,
        m: &mut [VertexId],
        out: &mut Vec<Vec<VertexId>>,
    ) {
        for (x, y) in [(a, b), (b, a)] {
            if !self.vertex_ok(prog.u1, x) || !self.vertex_ok(prog.u2, y) {
                continue;
            }
            m[prog.u1 as usize] = x;
            m[prog.u2 as usize] = y;
            self.extend(prog, eidx, 2, m, out);
            m[prog.u1 as usize] = NO_VERTEX;
            m[prog.u2 as usize] = NO_VERTEX;
        }
    }

    fn extend(
        &self,
        prog: &SeedProgram,
        eidx: usize,
        k: usize,
        m: &mut [VertexId],
        out: &mut Vec<Vec<VertexId>>,
    ) {
        if k == prog.order.len() {
            out.push(m.to_vec());
            return;
        }
        let u = prog.order[k];
        let pivot_data = m[prog.order[prog.pivot[k - 2]] as usize];
        // Candidates extend from the pivot's data image; the pivot edge
        // itself is subject to the smallest-index rule like any other.
        'cand: for &c in self.view.neighbors(pivot_data) {
            if !self.vertex_ok(u, c) {
                continue;
            }
            // Injectivity: the partial map is tiny (|V(q)| ≤ 64-ish), a
            // linear scan beats a per-branch hash set.
            for j in 0..k {
                if m[prog.order[j] as usize] == c {
                    continue 'cand;
                }
            }
            if self.delta_index(pivot_data, c).is_some_and(|i| i < eidx) {
                continue;
            }
            for &j in &prog.backward[k - 2] {
                let w = m[prog.order[j] as usize];
                if !self.view.has_edge(w, c) {
                    continue 'cand;
                }
                if self.delta_index(w, c).is_some_and(|i| i < eidx) {
                    continue 'cand;
                }
            }
            m[u as usize] = c;
            self.extend(prog, eidx, k + 1, m, out);
            m[u as usize] = NO_VERTEX;
        }
    }
}

/// Enumerate one side of the delta: all embeddings on `view` that use at
/// least one edge of `delta_edges`, each reported exactly once.
fn enumerate_side(
    sq: &StandingQuery,
    view: &Snapshot,
    delta_edges: &[(VertexId, VertexId)],
    threads: usize,
) -> Vec<Vec<VertexId>> {
    if delta_edges.is_empty() {
        return Vec::new();
    }
    let edge_index: HashMap<(VertexId, VertexId), usize> = delta_edges
        .iter()
        .copied()
        .enumerate()
        .map(|(i, e)| (e, i))
        .collect();
    let run = SeedRun {
        view,
        q: sq.plan.query(),
        qnlf: &sq.qnlf,
        edge_index: &edge_index,
    };
    let n = sq.plan.query().num_vertices();
    let progs = &sq.programs;
    let units = delta_edges.len() * progs.len();

    let exec_unit = |unit: usize, m: &mut Vec<VertexId>, out: &mut Vec<Vec<VertexId>>| {
        let (eidx, pidx) = (unit / progs.len(), unit % progs.len());
        let (a, b) = delta_edges[eidx];
        run.run_seed(&progs[pidx], eidx, a, b, m, out);
    };

    // Inline below the cutoff: spawning the pool costs tens of
    // microseconds per worker, which dwarfs a handful of seed subtrees —
    // and small batches are exactly the case incremental maintenance
    // must win.
    const INLINE_UNITS: usize = 64;
    let mut results: Vec<Vec<VertexId>> = if threads <= 1 || units <= INLINE_UNITS {
        let mut out = Vec::new();
        let mut m = vec![NO_VERTEX; n];
        for unit in 0..units {
            exec_unit(unit, &mut m, &mut out);
        }
        out
    } else {
        // Morsel-parallel: chunk the (delta edge × program) grid and let
        // the runtime's work stealing absorb skew across seed subtrees.
        let threads = threads.min(units);
        let size = morsel_size_for(units, threads);
        let mut queues: Vec<Vec<std::ops::Range<usize>>> = vec![Vec::new(); threads];
        let mut start = 0;
        let mut k = 0;
        while start < units {
            let end = (start + size).min(units);
            queues[k % threads].push(start..end);
            start = end;
            k += 1;
        }
        let pool = MorselQueue::new(queues);
        let worker_out = pool.run(
            |_wid| (vec![NO_VERTEX; n], Vec::new()),
            |_wid, (m, out): &mut (Vec<VertexId>, Vec<Vec<VertexId>>), morsel| {
                for unit in morsel {
                    exec_unit(unit, m, out);
                }
                true
            },
        );
        worker_out
            .into_iter()
            .flat_map(|((_, out), _)| out)
            .collect()
    };
    results.sort_unstable();
    debug_assert!(
        results.windows(2).all(|w| w[0] != w[1]),
        "exactly-once attribution must not duplicate embeddings"
    );
    results
}

/// Compute the embeddings a committed batch added and removed for one
/// standing query, seeding only from the batch's delta edges.
///
/// `threads` controls the morsel-parallel fan-out over (delta edge ×
/// seed program) units; `1` runs inline. Match caps and time limits of
/// the plan's config do not apply here — the delta is exact by
/// construction.
pub fn delta_matches(sq: &StandingQuery, committed: &Committed, threads: usize) -> DeltaMatches {
    DeltaMatches {
        added: enumerate_side(sq, &committed.post, &committed.info.edges_inserted, threads),
        removed: enumerate_side(sq, &committed.pre, &committed.info.edges_deleted, threads),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::UpdateBatch;
    use crate::versioned::VersionedGraph;
    use sm_graph::builder::graph_from_edges;
    use sm_match::enumerate::CollectSink;
    use sm_match::{DataContext, MatchConfig, Pipeline};
    use sm_match::{FilterKind, LcMethod, OrderKind};

    fn plan_for(q: &Graph, g: &Graph) -> Option<Arc<QueryPlan>> {
        let gc = DataContext::new(g);
        let p = Pipeline::new(
            "delta-test",
            FilterKind::GraphQl,
            OrderKind::GraphQl,
            LcMethod::Intersect,
        );
        p.plan(q, &gc, &MatchConfig::default()).ok().map(Arc::new)
    }

    fn full_matches(q: &Graph, g: &Graph) -> Vec<Vec<VertexId>> {
        let gc = DataContext::new(g);
        let p = Pipeline::new("full", FilterKind::Ldf, OrderKind::Ri, LcMethod::Direct);
        let mut sink = CollectSink::default();
        p.run_with_sink(q, &gc, &MatchConfig::default(), &mut sink);
        let mut m = sink.matches;
        m.sort_unstable();
        m
    }

    fn triangle_query() -> Graph {
        graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn inserted_edge_completes_a_triangle() {
        // path 0-1-2 (all label 0); inserting (0,2) closes the triangle.
        let g0 = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let q = triangle_query();
        let vg = VersionedGraph::new(g0);
        let c = vg.commit(&UpdateBatch::new().add_edge(0, 2));
        let (mat, _) = c.post.materialize();
        let sq = StandingQuery::new(plan_for(&q, &mat).unwrap()).unwrap();
        let d = delta_matches(&sq, &c, 1);
        assert!(d.removed.is_empty());
        // 6 automorphic images of the one triangle.
        assert_eq!(d.added.len(), 6);
        assert_eq!(d.added, full_matches(&q, &mat));
    }

    #[test]
    fn deleted_edge_retracts_exactly_its_embeddings() {
        // two triangles sharing edge (0,1): {0,1,2} and {0,1,3}.
        let g0 = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (0, 2), (1, 3), (0, 3)]);
        let q = triangle_query();
        let vg = VersionedGraph::new(g0.clone());
        let before = full_matches(&q, &g0);
        let c = vg.commit(&UpdateBatch::new().delete_edge(0, 2));
        let sq = StandingQuery::new(plan_for(&q, &g0).unwrap()).unwrap();
        let d = delta_matches(&sq, &c, 1);
        assert!(d.added.is_empty());
        assert_eq!(d.removed.len(), 6, "only triangle {{0,1,2}} dies");
        let (mat, _) = c.post.materialize();
        assert_eq!(d.apply_to(&before), full_matches(&q, &mat));
    }

    #[test]
    fn multi_edge_batch_counts_each_embedding_once() {
        // Empty triangle built in ONE batch: all 3 edges inserted at once.
        // Every found embedding uses all three delta edges; the smallest-
        // index rule must still count each exactly once.
        let g0 = graph_from_edges(&[0, 0, 0], &[]);
        let q = triangle_query();
        let vg = VersionedGraph::new(g0);
        let c = vg.commit(
            &UpdateBatch::new()
                .add_edge(0, 1)
                .add_edge(1, 2)
                .add_edge(0, 2),
        );
        let (mat, _) = c.post.materialize();
        let sq = StandingQuery::new(plan_for(&q, &mat).unwrap()).unwrap();
        let d = delta_matches(&sq, &c, 1);
        assert_eq!(d.added.len(), 6);
        assert_eq!(d.added, full_matches(&q, &mat));
    }

    #[test]
    fn unsupported_queries_are_rejected() {
        let g = graph_from_edges(&[0, 0], &[(0, 1)]);
        // edgeless query
        let q_e = graph_from_edges(&[0], &[]);
        // disconnected query
        let q_d = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (2, 3)]);
        let gc = DataContext::new(&g);
        for q in [q_e, q_d] {
            // Fixed order: the standard orderings reject disconnected
            // queries before the plan even exists.
            let order: Vec<VertexId> = (0..q.num_vertices() as VertexId).collect();
            let p = Pipeline::new(
                "fixed",
                FilterKind::Ldf,
                OrderKind::Fixed(order),
                LcMethod::Direct,
            );
            if let Ok(plan) = p.plan(&q, &gc, &MatchConfig::default()) {
                assert!(StandingQuery::new(Arc::new(plan)).is_none());
            }
        }
    }

    #[test]
    fn delta_apply_handles_mixed_batches() {
        // 4-cycle query on a grid-ish graph with labeled vertices.
        let q = graph_from_edges(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let g0 = graph_from_edges(
            &[0, 1, 0, 1, 0, 1],
            &[(0, 1), (1, 2), (2, 3), (0, 3), (2, 5), (4, 5), (3, 4)],
        );
        let before = full_matches(&q, &g0);
        assert!(!before.is_empty());
        let vg = VersionedGraph::new(g0.clone());
        let c = vg.commit(
            &UpdateBatch::new()
                .delete_edge(0, 1)
                .add_edge(4, 1)
                .add_vertex(1)
                .add_edge(6, 0)
                .add_edge(6, 2),
        );
        let (mat, _) = c.post.materialize();
        let want = full_matches(&q, &mat);
        let sq = StandingQuery::new(plan_for(&q, &g0).unwrap()).unwrap();
        for threads in [1, 4] {
            let d = delta_matches(&sq, &c, threads);
            assert_eq!(d.apply_to(&before), want, "threads={threads}");
        }
    }
}
