//! [`UpdateBatch`]: one atomic set of graph mutations.

use sm_graph::{Label, VertexId};

/// A batch of graph updates committed atomically to a
/// [`crate::VersionedGraph`]. Order inside a batch does not matter; the
/// commit applies vertex additions, then edge deletions (including the
/// edges dropped by vertex deletions), then edge insertions, and
/// normalizes away no-ops (inserting a present edge, deleting an absent
/// one, self-loops, duplicates).
#[derive(Clone, Debug, Default)]
pub struct UpdateBatch {
    /// Labels of vertices to add; ids are assigned densely from the
    /// current vertex count, in order.
    pub add_vertices: Vec<Label>,
    /// Vertices to delete (tombstoned: incident edges removed, id never
    /// reused).
    pub delete_vertices: Vec<VertexId>,
    /// Undirected edges to insert.
    pub add_edges: Vec<(VertexId, VertexId)>,
    /// Undirected edges to delete.
    pub delete_edges: Vec<(VertexId, VertexId)>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        UpdateBatch::default()
    }

    /// Add a vertex with `label`; its id is assigned at commit time.
    pub fn add_vertex(mut self, label: Label) -> Self {
        self.add_vertices.push(label);
        self
    }

    /// Tombstone vertex `v` (drops its incident edges).
    pub fn delete_vertex(mut self, v: VertexId) -> Self {
        self.delete_vertices.push(v);
        self
    }

    /// Insert the undirected edge `(u, v)`.
    pub fn add_edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.add_edges.push((u, v));
        self
    }

    /// Delete the undirected edge `(u, v)`.
    pub fn delete_edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.delete_edges.push((u, v));
        self
    }

    /// Whether the batch contains no operations at all.
    pub fn is_empty(&self) -> bool {
        self.add_vertices.is_empty()
            && self.delete_vertices.is_empty()
            && self.add_edges.is_empty()
            && self.delete_edges.is_empty()
    }

    /// Total operation count (before normalization).
    pub fn len(&self) -> usize {
        self.add_vertices.len()
            + self.delete_vertices.len()
            + self.add_edges.len()
            + self.delete_edges.len()
    }

    /// Translate every vertex-addressed operation through `map`,
    /// dropping operations with an unmapped vertex (edges need both
    /// endpoints mapped). `add_vertices` carries labels, not ids, and
    /// passes through untouched.
    ///
    /// This is the routing primitive of the sharded serving tier: a
    /// global batch restricted to one shard is the global ops mapped
    /// through that shard's global→local vertex table — ops naming
    /// vertices the shard does not hold simply don't apply there.
    pub fn map_vertices<F>(&self, mut map: F) -> UpdateBatch
    where
        F: FnMut(VertexId) -> Option<VertexId>,
    {
        UpdateBatch {
            add_vertices: self.add_vertices.clone(),
            delete_vertices: self
                .delete_vertices
                .iter()
                .filter_map(|&v| map(v))
                .collect(),
            add_edges: self
                .add_edges
                .iter()
                .filter_map(|&(u, v)| Some((map(u)?, map(v)?)))
                .collect(),
            delete_edges: self
                .delete_edges
                .iter()
                .filter_map(|&(u, v)| Some((map(u)?, map(v)?)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_ops() {
        let b = UpdateBatch::new()
            .add_vertex(3)
            .add_edge(0, 1)
            .delete_edge(1, 2)
            .delete_vertex(4);
        assert_eq!(b.add_vertices, vec![3]);
        assert_eq!(b.add_edges, vec![(0, 1)]);
        assert_eq!(b.delete_edges, vec![(1, 2)]);
        assert_eq!(b.delete_vertices, vec![4]);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        assert!(UpdateBatch::new().is_empty());
    }

    #[test]
    fn map_vertices_translates_and_drops() {
        let b = UpdateBatch::new()
            .add_vertex(7)
            .delete_vertex(1)
            .delete_vertex(9)
            .add_edge(0, 1)
            .add_edge(0, 9)
            .delete_edge(1, 2);
        // Map 0→10, 1→11, 2→12; everything else unmapped.
        let m = b.map_vertices(|v| (v < 3).then_some(v + 10));
        assert_eq!(m.add_vertices, vec![7], "labels pass through");
        assert_eq!(m.delete_vertices, vec![11], "unmapped vertex dropped");
        assert_eq!(m.add_edges, vec![(10, 11)], "edge needs both endpoints");
        assert_eq!(m.delete_edges, vec![(11, 12)]);
    }
}
