//! Versioned dynamic graphs and delta-driven incremental matching.
//!
//! Everything below PR 4 assumes a *static* data graph: the only way to
//! change the graph a [`sm_match::Pipeline`] or `sm_service::Service`
//! runs against is to replace it wholesale, recompiling every plan and
//! recomputing every result from scratch. This crate adds the dynamic
//! layer:
//!
//! * [`VersionedGraph`] — an immutable CSR base plus per-epoch delta
//!   overlays (edge/vertex inserts and deletes). Committing an
//!   [`UpdateBatch`] produces a new epoch; cheap [`Snapshot`] handles pin
//!   an epoch so in-flight readers keep a consistent view while updaters
//!   commit. When the live overlay grows past a threshold it is folded
//!   ("compacted") into a fresh CSR base.
//! * [`GraphView`] — the neighbor/label/degree/NLF query surface of
//!   [`sm_graph::Graph`], as a trait implemented by both the plain CSR
//!   graph and a [`Snapshot`], so enumeration code can run against either.
//! * **Incremental index maintenance** — a snapshot's label index and
//!   neighbor-label-frequency table are patched per delta (copy-on-write
//!   per touched vertex), never rebuilt from scratch; materializing a
//!   snapshot back into CSR form reuses the untouched rows.
//! * [`StandingQuery`] / [`delta_matches`] — delta-driven incremental
//!   enumeration: for a committed batch, the engine is seeded from each
//!   new edge mapped onto each compatible query edge and enumerates only
//!   the embeddings that use it (and symmetrically retracts embeddings
//!   using deleted edges), instead of re-running the full search. The
//!   compiled [`sm_match::QueryPlan`] is reused across batches and the
//!   per-batch work is distributed over the runtime's work-stealing
//!   morsel queues.
//!
//! # Semantics
//!
//! For a batch `Δ` turning graph `G` into `G'`, the incremental engine
//! returns exactly
//!
//! * `added`   = embeddings of `G'` that use at least one inserted edge,
//! * `removed` = embeddings of `G` that use at least one deleted edge,
//!
//! so `matches(G') = matches(G) − removed + added` as *sets* — the same
//! result a from-scratch run on `G'` produces (asserted by this crate's
//! tests on seeded RMAT and `.graph` workloads, single- and
//! multi-threaded). Each embedding is counted once: it is attributed to
//! the smallest-index delta edge it uses.
//!
//! Deleting a vertex removes its incident edges and excludes it from the
//! delta label index; the id itself is never reused (a tombstone), so
//! vertex ids stay stable across epochs. Incremental enumeration targets
//! connected queries with at least one edge — the standing-query layer
//! falls back to full recomputation for edgeless queries.

#![warn(missing_docs)]

pub mod batch;
pub mod incremental;
pub mod stream;
pub mod versioned;
pub mod view;

pub use batch::UpdateBatch;
pub use incremental::{delta_matches, DeltaMatches, StandingQuery};
pub use stream::{UpdateStream, UpdateStreamSpec};
pub use versioned::{CommitInfo, Committed, Snapshot, VersionedGraph, VersionedStats};
pub use view::GraphView;
