//! End-to-end equivalence: incremental maintenance must produce exactly
//! the embedding set of a from-scratch run after every committed batch —
//! insert-only, delete-only and mixed streams, single- and
//! multi-threaded, on seeded RMAT graphs and on a `.graph`-format
//! fixture.

use sm_delta::{delta_matches, GraphView, StandingQuery, UpdateBatch, VersionedGraph};
use sm_graph::builder::graph_from_edges;
use sm_graph::gen::rmat::{rmat_graph, RmatParams};
use sm_graph::{Graph, VertexId};
use sm_match::enumerate::CollectSink;
use sm_match::{DataContext, FilterKind, LcMethod, MatchConfig, OrderKind, Pipeline};
use sm_runtime::Rng64;
use std::sync::Arc;

fn full_matches(q: &Graph, g: &Graph) -> Vec<Vec<VertexId>> {
    let gc = DataContext::new(g);
    let p = Pipeline::new("ref", FilterKind::Ldf, OrderKind::Ri, LcMethod::Direct);
    let mut sink = CollectSink::default();
    let out = p.run_with_sink(q, &gc, &MatchConfig::default(), &mut sink);
    assert_eq!(out.outcome, sm_match::Outcome::Complete);
    let mut m = sink.matches;
    m.sort_unstable();
    m
}

fn standing(q: &Graph, _g: &Graph) -> StandingQuery {
    // The incremental engine only uses the plan's query graph; plan
    // against the query itself (always satisfiable) so standing queries
    // can be registered even when the initial graph has zero matches.
    let gc = DataContext::new(q);
    let p = Pipeline::new(
        "plan",
        FilterKind::GraphQl,
        OrderKind::GraphQl,
        LcMethod::Intersect,
    );
    let plan = p
        .plan(q, &gc, &MatchConfig::default())
        .expect("query matches itself");
    StandingQuery::new(Arc::new(plan)).expect("connected query with edges")
}

/// Drive `batches` through a [`VersionedGraph`] and assert, after every
/// commit, that incrementally maintained results equal a full recompute
/// on the materialized post graph — for every thread count given.
fn assert_equivalence(g0: Graph, queries: &[Graph], batches: Vec<UpdateBatch>, threads: &[usize]) {
    let vg = VersionedGraph::new(g0.clone());
    let standing: Vec<StandingQuery> = queries.iter().map(|q| standing(q, &g0)).collect();
    let mut maintained: Vec<Vec<Vec<VertexId>>> =
        queries.iter().map(|q| full_matches(q, &g0)).collect();
    for (step, batch) in batches.into_iter().enumerate() {
        let c = vg.commit(&batch);
        let (mat, mat_nlf) = c.post.materialize();
        // Incremental NLF maintenance agrees with a fresh build.
        let fresh_nlf = mat.build_nlf();
        for v in 0..mat.num_vertices() as VertexId {
            assert_eq!(mat_nlf.entry(v), fresh_nlf.entry(v), "nlf v{v} step {step}");
        }
        for (qi, (sq, acc)) in standing.iter().zip(maintained.iter_mut()).enumerate() {
            let want = full_matches(sq.plan().query(), &mat);
            let base = delta_matches(sq, &c, 1);
            for &t in threads {
                let d = delta_matches(sq, &c, t);
                assert_eq!(d, base, "threads={t} query {qi} step {step}");
            }
            *acc = base.apply_to(acc);
            assert_eq!(*acc, want, "query {qi} step {step}");
        }
    }
}

fn test_queries() -> Vec<Graph> {
    vec![
        // triangle, uniform labels (automorphism-heavy)
        graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]),
        // labeled path of length 2
        graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2)]),
        // 4-cycle with alternating labels
        graph_from_edges(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (0, 3)]),
        // star with distinct leaf labels
        graph_from_edges(&[0, 1, 2, 1], &[(0, 1), (0, 2), (0, 3)]),
    ]
}

fn random_present_edge(rng: &mut Rng64, view: &sm_delta::Snapshot) -> Option<(VertexId, VertexId)> {
    for _ in 0..64 {
        let u = rng.next_u64_below(view.num_vertices() as u64) as VertexId;
        let d = view.degree(u);
        if d == 0 {
            continue;
        }
        let w = view.neighbors(u)[rng.next_u64_below(d as u64) as usize];
        return Some((u, w));
    }
    None
}

fn random_absent_pair(rng: &mut Rng64, view: &sm_delta::Snapshot) -> Option<(VertexId, VertexId)> {
    let n = view.num_vertices() as u64;
    for _ in 0..64 {
        let u = rng.next_u64_below(n) as VertexId;
        let v = rng.next_u64_below(n) as VertexId;
        if u != v && !view.is_tombstoned(u) && !view.is_tombstoned(v) && !view.has_edge(u, v) {
            return Some((u, v));
        }
    }
    None
}

#[test]
fn insert_only_stream_on_rmat() {
    let g0 = rmat_graph(150, 4.0, 3, RmatParams::PAPER, 31);
    let vg = VersionedGraph::new(g0.clone());
    let mut rng = Rng64::seed_from_u64(101);
    let mut batches = Vec::new();
    for _ in 0..6 {
        let s = vg.snapshot();
        let mut b = UpdateBatch::new();
        for _ in 0..4 {
            if let Some((u, v)) = random_absent_pair(&mut rng, &s) {
                b = b.add_edge(u, v);
            }
        }
        vg.commit(&b);
        batches.push(b);
    }
    assert_equivalence(g0, &test_queries(), batches, &[1, 2, 4]);
}

#[test]
fn large_batch_takes_the_parallel_path() {
    // Enough delta edges that the (edge x program) grid exceeds the
    // inline cutoff, so the morsel pool actually runs — and must agree
    // with the inline result exactly (assert_equivalence compares every
    // thread count against threads=1).
    let g0 = rmat_graph(200, 5.0, 3, RmatParams::PAPER, 41);
    let vg = VersionedGraph::new(g0.clone());
    let mut rng = Rng64::seed_from_u64(606);
    let s = vg.snapshot();
    let mut b = UpdateBatch::new();
    for _ in 0..80 {
        if let Some((u, v)) = random_absent_pair(&mut rng, &s) {
            b = b.add_edge(u, v);
        }
        if let Some((u, v)) = random_present_edge(&mut rng, &s) {
            b = b.delete_edge(u, v);
        }
    }
    vg.commit(&b);
    assert_equivalence(g0, &test_queries(), vec![b], &[2, 4]);
}

#[test]
fn delete_only_stream_on_rmat() {
    let g0 = rmat_graph(150, 6.0, 3, RmatParams::PAPER, 33);
    let vg = VersionedGraph::new(g0.clone());
    let mut rng = Rng64::seed_from_u64(202);
    let mut batches = Vec::new();
    for _ in 0..6 {
        let s = vg.snapshot();
        let mut b = UpdateBatch::new();
        for _ in 0..4 {
            if let Some((u, v)) = random_present_edge(&mut rng, &s) {
                b = b.delete_edge(u, v);
            }
        }
        vg.commit(&b);
        batches.push(b);
    }
    assert_equivalence(g0, &test_queries(), batches, &[1, 4]);
}

#[test]
fn mixed_stream_with_vertex_churn_on_rmat() {
    let g0 = rmat_graph(120, 5.0, 4, RmatParams::PAPER, 35);
    let vg = VersionedGraph::new(g0.clone());
    let mut rng = Rng64::seed_from_u64(303);
    let mut batches = Vec::new();
    for step in 0..8 {
        let s = vg.snapshot();
        let mut b = UpdateBatch::new();
        if let Some((u, v)) = random_absent_pair(&mut rng, &s) {
            b = b.add_edge(u, v);
        }
        if let Some((u, v)) = random_present_edge(&mut rng, &s) {
            b = b.delete_edge(u, v);
        }
        // vertex churn: add a labeled vertex wired to two live anchors,
        // and periodically tombstone a random live vertex.
        let label = rng.next_u64_below(4) as sm_graph::Label;
        let id = s.num_vertices() as VertexId;
        b = b.add_vertex(label);
        if let Some((u, v)) = random_absent_pair(&mut rng, &s) {
            b = b.add_edge(id, u).add_edge(id, v);
        }
        if step % 3 == 2 {
            let v = rng.next_u64_below(s.num_vertices() as u64) as VertexId;
            if !s.is_tombstoned(v) {
                b = b.delete_vertex(v);
            }
        }
        vg.commit(&b);
        batches.push(b);
    }
    assert_equivalence(g0, &test_queries(), batches, &[1, 4]);
}

#[test]
fn mixed_stream_survives_compaction() {
    // Tiny threshold: nearly every commit compacts; results must not care.
    let g0 = rmat_graph(100, 5.0, 3, RmatParams::PAPER, 37);
    let vg = VersionedGraph::with_threshold(g0.clone(), 2);
    let mut rng = Rng64::seed_from_u64(404);
    let standing: Vec<StandingQuery> = test_queries().iter().map(|q| standing(q, &g0)).collect();
    let mut maintained: Vec<Vec<Vec<VertexId>>> = test_queries()
        .iter()
        .map(|q| full_matches(q, &g0))
        .collect();
    for step in 0..8 {
        let s = vg.snapshot();
        let mut b = UpdateBatch::new();
        for _ in 0..3 {
            if let Some((u, v)) = random_absent_pair(&mut rng, &s) {
                b = b.add_edge(u, v);
            }
            if let Some((u, v)) = random_present_edge(&mut rng, &s) {
                b = b.delete_edge(u, v);
            }
        }
        let c = vg.commit(&b);
        let (mat, _) = c.post.materialize();
        for (sq, acc) in standing.iter().zip(maintained.iter_mut()) {
            let d = delta_matches(sq, &c, 2);
            *acc = d.apply_to(acc);
            assert_eq!(*acc, full_matches(sq.plan().query(), &mat), "step {step}");
        }
    }
    assert!(vg.stats().compactions > 0, "threshold 2 must compact");
}

#[test]
fn graph_format_fixture_round_trip() {
    // A `.graph`-format fixture (the paper's text format), parsed through
    // the real reader, then mutated and checked incrementally.
    let text = "\
t 8 10
v 0 0 3
v 1 1 3
v 2 0 2
v 3 1 3
v 4 0 3
v 5 1 2
v 6 0 2
v 7 1 2
e 0 1
e 0 2
e 0 3
e 1 2
e 1 4
e 3 4
e 3 6
e 4 5
e 5 7
e 6 7
";
    let g0 = sm_graph::io::read_graph(text.as_bytes()).expect("fixture parses");
    assert_eq!((g0.num_vertices(), g0.num_edges()), (8, 10));
    let batches = vec![
        UpdateBatch::new().add_edge(2, 5).add_edge(6, 1),
        UpdateBatch::new().delete_edge(0, 1).delete_edge(3, 4),
        UpdateBatch::new()
            .add_vertex(0)
            .add_edge(8, 1)
            .add_edge(8, 7)
            .delete_vertex(2),
        UpdateBatch::new().add_edge(0, 1),
    ];
    assert_equivalence(g0, &test_queries(), batches, &[1, 3]);
}

#[test]
fn snapshot_pinned_before_batch_keeps_pre_update_results() {
    let g0 = rmat_graph(150, 5.0, 3, RmatParams::PAPER, 39);
    let q = &test_queries()[0];
    let vg = VersionedGraph::new(g0.clone());
    let before = full_matches(q, &g0);
    let pinned = vg.snapshot();
    // Heavy churn after pinning.
    let mut rng = Rng64::seed_from_u64(505);
    for _ in 0..5 {
        let s = vg.snapshot();
        let mut b = UpdateBatch::new();
        for _ in 0..8 {
            if let Some((u, v)) = random_absent_pair(&mut rng, &s) {
                b = b.add_edge(u, v);
            }
            if let Some((u, v)) = random_present_edge(&mut rng, &s) {
                b = b.delete_edge(u, v);
            }
        }
        vg.commit(&b);
    }
    assert!(vg.epoch() > 0);
    // The pinned snapshot still materializes to the original graph.
    let (old, _) = pinned.materialize();
    assert_eq!(full_matches(q, &old), before);
    assert_eq!(pinned.epoch(), 0);
    assert_eq!(old.num_edges(), g0.num_edges());
    // And the head moved on.
    let (new, _) = vg.snapshot().materialize();
    assert_ne!(new.num_edges(), 0);
    assert_ne!(
        full_matches(q, &new).len(),
        usize::MAX,
        "head recompute runs"
    );
}
