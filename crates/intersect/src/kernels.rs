//! Flat sorted-array intersection kernels.

/// Cardinality ratio above which [`hybrid`] switches from merge to
/// galloping. EmptyHeaded and the paper's implementation use a constant in
/// this range; 32 balances the probe overhead against skipped comparisons.
pub const HYBRID_RATIO: usize = 32;

/// Which intersection kernel to use; selectable per-engine so Figure 10
/// can compare them under identical workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum IntersectKind {
    /// Two-pointer merge.
    Merge,
    /// Galloping/binary probing of the larger side.
    Galloping,
    /// Merge for similar cardinalities, galloping for skewed ones.
    #[default]
    Hybrid,
    /// QFilter-style block-bitmap intersection (see [`crate::bsr`]).
    Bsr,
}

impl IntersectKind {
    /// Stable display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            IntersectKind::Merge => "Merge",
            IntersectKind::Galloping => "Galloping",
            IntersectKind::Hybrid => "Hybrid",
            IntersectKind::Bsr => "QFilter",
        }
    }
}

/// Two-pointer merge intersection. Appends `a ∩ b` to `out`.
///
/// ```
/// let mut out = Vec::new();
/// sm_intersect::merge(&[1, 3, 5, 7], &[2, 3, 4, 7], &mut out);
/// assert_eq!(out, vec![3, 7]);
/// ```
pub fn merge(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x < y {
            i += 1;
        } else if y < x {
            j += 1;
        } else {
            out.push(x);
            i += 1;
            j += 1;
        }
    }
}

/// Exponential search: smallest index `k >= lo` with `hay[k] >= needle`,
/// or `hay.len()` if none.
#[inline]
fn gallop_to(hay: &[u32], lo: usize, needle: u32) -> usize {
    if lo >= hay.len() || hay[lo] >= needle {
        return lo;
    }
    // Invariant: hay[lo + prev] < needle. Double the step until the probe
    // overshoots, then binary-search the bracketed window.
    let mut prev = 0usize;
    let mut step = 1usize;
    while lo + step < hay.len() && hay[lo + step] < needle {
        prev = step;
        step <<= 1;
    }
    let left = lo + prev + 1;
    let right = (lo + step + 1).min(hay.len());
    match hay[left..right].binary_search(&needle) {
        Ok(k) | Err(k) => left + k,
    }
}

/// Galloping intersection: probes each element of the smaller list into the
/// larger one with exponential + binary search. Appends to `out`.
///
/// ```
/// let big: Vec<u32> = (0..1000).collect();
/// let mut out = Vec::new();
/// sm_intersect::galloping(&[5, 500, 2000], &big, &mut out);
/// assert_eq!(out, vec![5, 500]);
/// ```
pub fn galloping(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut pos = 0usize;
    for &x in small {
        pos = gallop_to(large, pos, x);
        if pos >= large.len() {
            break;
        }
        if large[pos] == x {
            out.push(x);
            pos += 1;
        }
    }
}

/// Hybrid policy: merge when the cardinalities are within
/// [`HYBRID_RATIO`]×, galloping otherwise. This is the paper's default.
pub fn hybrid(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (small, large) = if a.len() <= b.len() {
        (a.len(), b.len())
    } else {
        (b.len(), a.len())
    };
    if small == 0 {
        return;
    }
    if large / small >= HYBRID_RATIO {
        galloping(a, b, out);
    } else {
        merge(a, b, out);
    }
}

/// Dispatch on [`IntersectKind`], appending `a ∩ b` to `out`.
///
/// For [`IntersectKind::Bsr`] this converts on the fly, which is only
/// sensible for measurement; engines that commit to BSR precompute
/// [`crate::BsrSet`]s instead.
pub fn intersect_buf(kind: IntersectKind, a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    match kind {
        IntersectKind::Merge => merge(a, b, out),
        IntersectKind::Galloping => galloping(a, b, out),
        IntersectKind::Hybrid => hybrid(a, b, out),
        IntersectKind::Bsr => {
            let ba = crate::BsrSet::from_sorted(a);
            let bb = crate::BsrSet::from_sorted(b);
            ba.intersect_into_vec(&bb, out);
        }
    }
}

/// Early-exit emptiness test: whether `a ∩ b` is non-empty. This is the
/// primitive behind the paper's Filtering Rule 3.1 (`N(v) ∩ C(u') ≠ ∅`),
/// applied millions of times during candidate refinement.
pub fn intersect_nonempty(a: &[u32], b: &[u32]) -> bool {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return false;
    }
    if large.len() / small.len() >= HYBRID_RATIO {
        let mut pos = 0usize;
        for &x in small {
            pos = gallop_to(large, pos, x);
            if pos >= large.len() {
                return false;
            }
            if large[pos] == x {
                return true;
            }
        }
        false
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < small.len() && j < large.len() {
            let (x, y) = (small[i], large[j]);
            if x < y {
                i += 1;
            } else if y < x {
                j += 1;
            } else {
                return true;
            }
        }
        false
    }
}

/// Cardinality of `a ∩ b` without materializing it (hybrid policy).
pub fn intersect_count(a: &[u32], b: &[u32]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return 0;
    }
    if large.len() / small.len() >= HYBRID_RATIO {
        let mut pos = 0usize;
        let mut n = 0usize;
        for &x in small {
            pos = gallop_to(large, pos, x);
            if pos >= large.len() {
                break;
            }
            if large[pos] == x {
                n += 1;
                pos += 1;
            }
        }
        n
    } else {
        let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
        while i < small.len() && j < large.len() {
            let (x, y) = (small[i], large[j]);
            if x < y {
                i += 1;
            } else if y < x {
                j += 1;
            } else {
                n += 1;
                i += 1;
                j += 1;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_all(a: &[u32], b: &[u32]) -> Vec<Vec<u32>> {
        [
            IntersectKind::Merge,
            IntersectKind::Galloping,
            IntersectKind::Hybrid,
            IntersectKind::Bsr,
        ]
        .iter()
        .map(|&k| {
            let mut out = Vec::new();
            intersect_buf(k, a, b, &mut out);
            out
        })
        .collect()
    }

    #[test]
    fn kernels_agree_on_basic_cases() {
        let cases: &[(&[u32], &[u32], &[u32])] = &[
            (&[], &[], &[]),
            (&[1], &[], &[]),
            (&[], &[2], &[]),
            (&[1, 2, 3], &[2, 3, 4], &[2, 3]),
            (&[1, 5, 9], &[2, 6, 10], &[]),
            (&[1, 2, 3], &[1, 2, 3], &[1, 2, 3]),
            (&[0, 31, 32, 63, 64], &[31, 64], &[31, 64]),
            (&[u32::MAX - 1, u32::MAX], &[u32::MAX], &[u32::MAX]),
        ];
        for &(a, b, want) in cases {
            for got in run_all(a, b) {
                assert_eq!(got, want, "a={a:?} b={b:?}");
            }
        }
    }

    #[test]
    fn galloping_with_skewed_sizes() {
        let large: Vec<u32> = (0..10_000).map(|i| i * 3).collect();
        let small = vec![3, 2998 * 3, 9999 * 3, 30001];
        let mut out = Vec::new();
        galloping(&small, &large, &mut out);
        assert_eq!(out, vec![3, 2998 * 3, 9999 * 3]);
        // symmetric argument order
        let mut out2 = Vec::new();
        galloping(&large, &small, &mut out2);
        assert_eq!(out2, out);
    }

    #[test]
    fn hybrid_picks_both_paths() {
        // similar sizes → merge path
        let a: Vec<u32> = (0..100).collect();
        let b: Vec<u32> = (50..150).collect();
        let mut out = Vec::new();
        hybrid(&a, &b, &mut out);
        assert_eq!(out, (50..100).collect::<Vec<u32>>());
        // skewed sizes → galloping path
        let big: Vec<u32> = (0..100_000).collect();
        let tiny = vec![5, 99_999];
        out.clear();
        hybrid(&tiny, &big, &mut out);
        assert_eq!(out, tiny);
    }

    #[test]
    fn count_matches_materialized() {
        let a: Vec<u32> = (0..500).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..500).map(|i| i * 3).collect();
        let mut out = Vec::new();
        merge(&a, &b, &mut out);
        assert_eq!(intersect_count(&a, &b), out.len());
        assert_eq!(intersect_count(&[], &a), 0);
    }

    #[test]
    fn names() {
        assert_eq!(IntersectKind::Hybrid.name(), "Hybrid");
        assert_eq!(IntersectKind::Bsr.name(), "QFilter");
        assert_eq!(IntersectKind::default(), IntersectKind::Hybrid);
    }
}

#[cfg(test)]
mod nonempty_tests {
    use super::*;

    #[test]
    fn nonempty_basic() {
        assert!(intersect_nonempty(&[1, 2, 3], &[3, 4]));
        assert!(!intersect_nonempty(&[1, 2], &[3, 4]));
        assert!(!intersect_nonempty(&[], &[1]));
        assert!(!intersect_nonempty(&[1], &[]));
        let big: Vec<u32> = (0..10_000).map(|i| i * 2).collect();
        assert!(intersect_nonempty(&[19_998], &big));
        assert!(!intersect_nonempty(&[19_999], &big));
    }
}
