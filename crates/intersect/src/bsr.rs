//! Base-and-State Representation (BSR) — a portable stand-in for the
//! QFilter SIMD intersection of Han, Zou and Yu (SIGMOD 2018).
//!
//! Each sorted `u32` set is re-encoded as pairs `(base, state)` where
//! `base = value >> 5` and `state` is a 32-bit bitmap of the low 5 bits of
//! every member sharing that base. Intersecting two BSR sets is a merge
//! over bases with a single `AND` per aligned pair, so one word operation
//! covers up to 32 elements — the same throughput lever QFilter pulls with
//! shuffles. On dense neighbor sets (web/social graphs like `eu`, `hu`)
//! most blocks carry many bits and BSR wins; on sparse sets nearly every
//! block carries one bit and the conversion/merge overhead makes it lose
//! to [`crate::hybrid`] — exactly the trade-off in the paper's Figure 10.

/// A set of `u32`s in base/state block form.
///
/// ```
/// use sm_intersect::BsrSet;
/// let a = BsrSet::from_sorted(&[0, 1, 2, 40]);
/// let b = BsrSet::from_sorted(&[1, 2, 3, 41]);
/// let mut out = Vec::new();
/// a.intersect_into_vec(&b, &mut out);
/// assert_eq!(out, vec![1, 2]);
/// assert!(a.contains(40) && !a.contains(41));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BsrSet {
    bases: Vec<u32>,
    states: Vec<u32>,
    len: usize,
}

impl BsrSet {
    /// Encode a strictly-ascending slice.
    pub fn from_sorted(sorted: &[u32]) -> Self {
        debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
        let mut bases = Vec::new();
        let mut states = Vec::new();
        for &x in sorted {
            let base = x >> 5;
            let bit = 1u32 << (x & 31);
            if bases.last() == Some(&base) {
                *states.last_mut().unwrap() |= bit;
            } else {
                bases.push(base);
                states.push(bit);
            }
        }
        BsrSet {
            bases,
            states,
            len: sorted.len(),
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of blocks (distinct bases).
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.bases.len()
    }

    /// Average elements per block — the density that decides whether BSR
    /// pays off.
    pub fn fill_ratio(&self) -> f64 {
        if self.bases.is_empty() {
            0.0
        } else {
            self.len as f64 / self.bases.len() as f64
        }
    }

    /// Intersect with `other` into a BSR `out` (cleared first).
    pub fn intersect_into(&self, other: &BsrSet, out: &mut BsrSet) {
        out.bases.clear();
        out.states.clear();
        out.len = 0;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.bases.len() && j < other.bases.len() {
            let (ba, bb) = (self.bases[i], other.bases[j]);
            if ba < bb {
                i += 1;
            } else if bb < ba {
                j += 1;
            } else {
                let s = self.states[i] & other.states[j];
                if s != 0 {
                    out.bases.push(ba);
                    out.states.push(s);
                    out.len += s.count_ones() as usize;
                }
                i += 1;
                j += 1;
            }
        }
    }

    /// Intersect with `other`, appending decoded `u32`s to `out`.
    pub fn intersect_into_vec(&self, other: &BsrSet, out: &mut Vec<u32>) {
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.bases.len() && j < other.bases.len() {
            let (ba, bb) = (self.bases[i], other.bases[j]);
            if ba < bb {
                i += 1;
            } else if bb < ba {
                j += 1;
            } else {
                let mut s = self.states[i] & other.states[j];
                let hi = ba << 5;
                while s != 0 {
                    let bit = s.trailing_zeros();
                    out.push(hi | bit);
                    s &= s - 1;
                }
                i += 1;
                j += 1;
            }
        }
    }

    /// Decode back to a sorted `Vec<u32>`.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        self.decode_into(&mut out);
        out
    }

    /// Decode into a caller-provided buffer (appended; no allocation when
    /// the buffer has capacity) — the hot-path variant used by the
    /// QFilter-style enumeration engine.
    pub fn decode_into(&self, out: &mut Vec<u32>) {
        out.reserve(self.len);
        for (&base, &state) in self.bases.iter().zip(&self.states) {
            let mut s = state;
            let hi = base << 5;
            while s != 0 {
                let bit = s.trailing_zeros();
                out.push(hi | bit);
                s &= s - 1;
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, x: u32) -> bool {
        let base = x >> 5;
        match self.bases.binary_search(&base) {
            Ok(i) => self.states[i] & (1 << (x & 31)) != 0,
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let xs = vec![0, 1, 31, 32, 33, 64, 1000, u32::MAX];
        let s = BsrSet::from_sorted(&xs);
        assert_eq!(s.to_vec(), xs);
        assert_eq!(s.len(), xs.len());
        assert_eq!(s.num_blocks(), 5); // {0,1,31}, {32,33}, {64}, {1000}, {MAX}
    }

    #[test]
    fn intersection_matches_merge() {
        let a: Vec<u32> = (0..200).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..200).map(|i| i * 3).collect();
        let sa = BsrSet::from_sorted(&a);
        let sb = BsrSet::from_sorted(&b);
        let mut out = Vec::new();
        sa.intersect_into_vec(&sb, &mut out);
        let mut want = Vec::new();
        crate::kernels::merge(&a, &b, &mut want);
        assert_eq!(out, want);
        // BSR-to-BSR variant
        let mut obsr = BsrSet::default();
        sa.intersect_into(&sb, &mut obsr);
        assert_eq!(obsr.to_vec(), want);
        assert_eq!(obsr.len(), want.len());
    }

    #[test]
    fn empty_cases() {
        let e = BsrSet::from_sorted(&[]);
        assert!(e.is_empty());
        assert_eq!(e.fill_ratio(), 0.0);
        let s = BsrSet::from_sorted(&[7]);
        let mut out = Vec::new();
        e.intersect_into_vec(&s, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn contains() {
        let s = BsrSet::from_sorted(&[3, 64, 65]);
        assert!(s.contains(3));
        assert!(s.contains(65));
        assert!(!s.contains(4));
        assert!(!s.contains(96));
    }

    #[test]
    fn fill_ratio_dense_vs_sparse() {
        let dense: Vec<u32> = (0..320).collect(); // 10 full blocks
        let sparse: Vec<u32> = (0..320).map(|i| i * 100).collect();
        assert_eq!(BsrSet::from_sorted(&dense).fill_ratio(), 32.0);
        assert!(BsrSet::from_sorted(&sparse).fill_ratio() < 1.5);
    }
}
