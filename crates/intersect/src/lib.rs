//! Sorted-set intersection kernels.
//!
//! The paper's Section 3.3.2 and Figure 10 hinge on how fast the local
//! candidate computation of CECI/DP-iso (Algorithm 5) can intersect
//! candidate adjacency lists. This crate provides the competing kernels:
//!
//! * [`merge`] — the textbook two-pointer merge, `O(|a| + |b|)`.
//! * [`galloping`] — binary-search (exponential probe) intersection,
//!   `O(|a| log |b|)`, the right choice when `|a| ≪ |b|`.
//! * [`hybrid`] — the EmptyHeaded-style policy the paper adopts: merge
//!   when cardinalities are similar, galloping otherwise.
//! * [`bsr`] — a portable block-bitmap layout standing in for QFilter's
//!   SIMD intersection (Han et al., SIGMOD 2018): each element is encoded
//!   as a (base, 32-bit bitmap) pair, so one word-AND covers up to 32
//!   elements of a dense set. Like QFilter it wins on dense neighbor sets
//!   and loses its layout overhead on sparse ones.
//!
//! All kernels compute the intersection of two strictly-ascending `u32`
//! slices into a caller-provided buffer so the enumeration hot loop never
//! allocates.

#![warn(missing_docs)]

pub mod bsr;
pub mod kernels;

pub use bsr::BsrSet;
pub use kernels::{
    galloping, hybrid, intersect_buf, intersect_count, intersect_nonempty, merge, IntersectKind,
    HYBRID_RATIO,
};
