//! Randomized invariants: every intersection kernel computes the same set
//! as a BTreeSet-based oracle, on arbitrary inputs.

use sm_intersect::{intersect_buf, intersect_count, BsrSet, IntersectKind};
use sm_runtime::check::Check;
use sm_runtime::rng::Rng64;
use sm_runtime::{ensure, ensure_eq};
use std::collections::BTreeSet;

const ALL_KINDS: [IntersectKind; 4] = [
    IntersectKind::Merge,
    IntersectKind::Galloping,
    IntersectKind::Hybrid,
    IntersectKind::Bsr,
];

fn sorted_unique(rng: &mut Rng64, len: usize, universe: u32) -> Vec<u32> {
    let set: BTreeSet<u32> = (0..len).map(|_| rng.gen_range(0u32..universe)).collect();
    set.into_iter().collect()
}

fn oracle(a: &[u32], b: &[u32]) -> Vec<u32> {
    let sb: BTreeSet<u32> = b.iter().copied().collect();
    a.iter().copied().filter(|x| sb.contains(x)).collect()
}

#[test]
fn kernels_match_oracle() {
    Check::new("kernels_match_oracle").cases(64).run(
        |rng, size| {
            let max_len = 1 + size as usize * 3;
            let a_len = rng.gen_range(0..max_len + 1);
            let b_len = rng.gen_range(0..max_len + 1);
            let a = sorted_unique(rng, a_len, 2000);
            let b = sorted_unique(rng, b_len, 2000);
            (a, b)
        },
        |(a, b)| {
            let expect = oracle(a, b);
            for kind in ALL_KINDS {
                let mut out = Vec::new();
                intersect_buf(kind, a, b, &mut out);
                ensure_eq!(&out, &expect, "kind {kind:?} disagrees with oracle");
            }
            ensure_eq!(intersect_count(a, b), expect.len());
            Ok(())
        },
    );
}

#[test]
fn kernels_match_on_skewed_sizes() {
    // Tiny `a` against large `b`: the regime where galloping/hybrid take
    // their fast paths.
    Check::new("kernels_match_on_skewed_sizes").cases(48).run(
        |rng, size| {
            let a_len = rng.gen_range(0..8usize);
            let a = sorted_unique(rng, a_len, 100_000);
            let b_len = 500 + (size as usize).min(100);
            let b = sorted_unique(rng, b_len, 100_000);
            (a, b)
        },
        |(a, b)| {
            let expect = oracle(a, b);
            for kind in ALL_KINDS {
                let mut out = Vec::new();
                intersect_buf(kind, a, b, &mut out);
                ensure_eq!(&out, &expect, "kind {kind:?} disagrees with oracle");
            }
            Ok(())
        },
    );
}

#[test]
fn bsr_round_trip() {
    Check::new("bsr_round_trip").cases(64).run(
        |rng, size| {
            // full-u32 values stress the block-id/bitmap split
            sorted_unique(rng, size as usize * 4, u32::MAX)
        },
        |xs| {
            let s = BsrSet::from_sorted(xs);
            ensure_eq!(&s.to_vec(), xs);
            ensure_eq!(s.len(), xs.len());
            for &x in xs {
                ensure!(s.contains(x), "BSR lost element {x}");
            }
            Ok(())
        },
    );
}
