//! Property tests: every intersection kernel computes the same set as a
//! HashSet-based oracle, on arbitrary inputs.

use proptest::prelude::*;
use sm_intersect::{intersect_buf, intersect_count, BsrSet, IntersectKind};
use std::collections::BTreeSet;

fn sorted_unique(xs: Vec<u32>) -> Vec<u32> {
    let set: BTreeSet<u32> = xs.into_iter().collect();
    set.into_iter().collect()
}

proptest! {
    #[test]
    fn kernels_match_oracle(a in prop::collection::vec(0u32..2000, 0..300),
                            b in prop::collection::vec(0u32..2000, 0..300)) {
        let a = sorted_unique(a);
        let b = sorted_unique(b);
        let oracle: Vec<u32> = {
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            a.iter().copied().filter(|x| sb.contains(x)).collect()
        };
        for kind in [IntersectKind::Merge, IntersectKind::Galloping,
                     IntersectKind::Hybrid, IntersectKind::Bsr] {
            let mut out = Vec::new();
            intersect_buf(kind, &a, &b, &mut out);
            prop_assert_eq!(&out, &oracle, "kind {:?}", kind);
        }
        prop_assert_eq!(intersect_count(&a, &b), oracle.len());
    }

    #[test]
    fn kernels_match_on_skewed_sizes(a in prop::collection::vec(0u32..100_000, 0..8),
                                     b in prop::collection::vec(0u32..100_000, 500..600)) {
        let a = sorted_unique(a);
        let b = sorted_unique(b);
        let oracle: Vec<u32> = {
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            a.iter().copied().filter(|x| sb.contains(x)).collect()
        };
        for kind in [IntersectKind::Merge, IntersectKind::Galloping,
                     IntersectKind::Hybrid, IntersectKind::Bsr] {
            let mut out = Vec::new();
            intersect_buf(kind, &a, &b, &mut out);
            prop_assert_eq!(&out, &oracle, "kind {:?}", kind);
        }
    }

    #[test]
    fn bsr_round_trip(xs in prop::collection::vec(any::<u32>(), 0..400)) {
        let xs = sorted_unique(xs);
        let s = BsrSet::from_sorted(&xs);
        prop_assert_eq!(s.to_vec(), xs.clone());
        prop_assert_eq!(s.len(), xs.len());
        for &x in &xs {
            prop_assert!(s.contains(x));
        }
    }
}
