//! `smatch` — command-line subgraph matcher.
//!
//! ```text
//! smatch --query q.graph --data g.graph [options]
//!
//!   --algorithm NAME   qsi | gql | cfl | ceci | dp | ri | 2pp   (default: gql)
//!                      glasgow | vf2 | ullmann   (out-of-framework baselines)
//!   --original         run the algorithm's original composition
//!                      (default: the study's optimized variant)
//!   --failing-sets     enable failing-set pruning
//!   --explain          print the query plan (candidates, order) first
//!   --limit N          stop after N matches (default 100000; 0 = all)
//!   --time-limit-ms N  kill the query after N ms
//!   --print N          print the first N matches
//! ```
//!
//! Graphs use the `.graph` text format of the paper's dataset release:
//! `t |V| |E|`, then `v <id> <label> <degree>` lines, then `e <u> <v>`.

use std::process::exit;
use std::time::Duration;
use subgraph_matching::glasgow::{glasgow_match, GlasgowConfig};
use subgraph_matching::graph::io::load_graph;
use subgraph_matching::matching::enumerate::CollectSink;
use subgraph_matching::matching::{ullmann, vf2};
use subgraph_matching::prelude::*;

struct Options {
    query: String,
    data: String,
    algorithm: String,
    original: bool,
    failing_sets: bool,
    explain: bool,
    limit: Option<u64>,
    time_limit: Option<Duration>,
    print: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: smatch --query q.graph --data g.graph \
         [--algorithm qsi|gql|cfl|ceci|dp|ri|2pp|glasgow|vf2|ullmann] \
         [--original] [--failing-sets] [--limit N] [--time-limit-ms N] [--print N]"
    );
    exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        query: String::new(),
        data: String::new(),
        algorithm: "gql".into(),
        original: false,
        failing_sets: false,
        explain: false,
        limit: Some(100_000),
        time_limit: None,
        print: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--query" => opts.query = next("--query"),
            "--data" => opts.data = next("--data"),
            "--algorithm" => opts.algorithm = next("--algorithm").to_lowercase(),
            "--original" => opts.original = true,
            "--explain" => opts.explain = true,
            "--failing-sets" => opts.failing_sets = true,
            "--limit" => {
                let n: u64 = next("--limit").parse().unwrap_or_else(|_| usage());
                opts.limit = (n > 0).then_some(n);
            }
            "--time-limit-ms" => {
                let n: u64 = next("--time-limit-ms").parse().unwrap_or_else(|_| usage());
                opts.time_limit = Some(Duration::from_millis(n));
            }
            "--print" => opts.print = next("--print").parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if opts.query.is_empty() || opts.data.is_empty() {
        usage();
    }
    // Validate the algorithm name before paying for graph loading.
    const KNOWN: [&str; 11] = [
        "qsi", "gql", "cfl", "ceci", "dp", "ri", "2pp", "vf2pp", "glasgow", "vf2", "ullmann",
    ];
    if !KNOWN.contains(&opts.algorithm.as_str()) {
        eprintln!("unknown algorithm '{}'", opts.algorithm);
        usage();
    }
    opts
}

fn load(path: &str, what: &str) -> Graph {
    load_graph(path).unwrap_or_else(|e| {
        eprintln!("failed to load {what} graph '{path}': {e}");
        exit(1);
    })
}

fn print_matches(matches: &[Vec<VertexId>], n: usize) {
    for m in matches.iter().take(n) {
        let pairs: Vec<String> = m
            .iter()
            .enumerate()
            .map(|(u, v)| format!("u{u}->v{v}"))
            .collect();
        println!("  {}", pairs.join(" "));
    }
    if matches.len() > n && n > 0 {
        println!("  ... ({} more)", matches.len() - n);
    }
}

fn main() {
    let opts = parse_args();
    let q = load(&opts.query, "query");
    let g = load(&opts.data, "data");
    println!("query: {}", GraphStats::of(&q));
    println!("data:  {}", GraphStats::of(&g));

    let mut cfg = MatchConfig {
        max_matches: opts.limit,
        time_limit: opts.time_limit,
        failing_sets: opts.failing_sets,
        ..Default::default()
    };

    match opts.algorithm.as_str() {
        "glasgow" => {
            let gcfg = GlasgowConfig {
                max_matches: opts.limit,
                time_limit: opts.time_limit,
                ..Default::default()
            };
            match glasgow_match(&q, &g, &gcfg) {
                Ok(stats) => {
                    println!(
                        "glasgow: {} match(es) in {:?} ({} nodes){}",
                        stats.matches,
                        stats.elapsed,
                        stats.nodes,
                        if stats.timed_out { " [timed out]" } else { "" }
                    );
                }
                Err(e) => {
                    eprintln!("glasgow: {e}");
                    exit(1);
                }
            }
        }
        "vf2" | "ullmann" => {
            let mut sink = CollectSink::default();
            let stats = if opts.algorithm == "vf2" {
                vf2::vf2_match(&q, &g, &cfg, &mut sink)
            } else {
                ullmann::ullmann_match(&q, &g, &cfg, &mut sink)
            };
            println!(
                "{}: {} match(es) in {:?} ({} nodes, outcome {:?})",
                opts.algorithm, stats.matches, stats.elapsed, stats.recursions, stats.outcome
            );
            print_matches(&sink.matches, opts.print);
        }
        name => {
            let alg = match name {
                "qsi" => Algorithm::QuickSi,
                "gql" => Algorithm::GraphQl,
                "cfl" => Algorithm::Cfl,
                "ceci" => Algorithm::Ceci,
                "dp" => Algorithm::DpIso,
                "ri" => Algorithm::Ri,
                "2pp" | "vf2pp" => Algorithm::Vf2pp,
                other => {
                    eprintln!("unknown algorithm '{other}'");
                    usage()
                }
            };
            let pipeline = if opts.original {
                // The original VF2++ composition cannot combine its extra
                // rule with failing sets.
                if opts.failing_sets && alg == Algorithm::Vf2pp {
                    cfg.failing_sets = false;
                    eprintln!("note: disabling failing sets for original 2PP (incompatible)");
                }
                alg.original()
            } else {
                alg.optimized()
            };
            let ctx = DataContext::new(&g);
            if opts.explain {
                match pipeline.explain(&q, &ctx, &cfg) {
                    Some(report) => print!("{report}"),
                    None => println!("plan: query is unsatisfiable (empty candidate set)"),
                }
            }
            let mut sink = CollectSink::default();
            let out = pipeline.run_with_sink(&q, &ctx, &cfg, &mut sink);
            println!(
                "{}: {} match(es) in {:?} (preprocessing {:?}, enumeration {:?}, {} nodes, outcome {:?})",
                pipeline.name,
                out.matches,
                out.total_time(),
                out.preprocessing_time(),
                out.enum_time,
                out.recursions,
                out.outcome
            );
            print_matches(&sink.matches, opts.print);
        }
    }
}
