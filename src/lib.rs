//! # subgraph-matching
//!
//! A Rust reproduction of *"In-Memory Subgraph Matching: An In-depth
//! Study"* (Shixuan Sun and Qiong Luo, SIGMOD 2020): eight representative
//! subgraph matching algorithms — QuickSI, GraphQL, CFL, CECI, DP-iso,
//! RI, VF2++ and a Glasgow-style constraint-programming solver — inside
//! one common framework whose **filtering**, **ordering**, **enumeration**
//! and **optimization** components can be mixed and measured
//! independently.
//!
//! This crate is the umbrella: it re-exports the workspace members so
//! downstream users depend on one crate.
//!
//! | Component | Crate | Re-export |
//! |---|---|---|
//! | Graph substrate, loaders, generators | `sm-graph` | [`graph`] |
//! | Set-intersection kernels | `sm-intersect` | [`intersect`] |
//! | The matching framework | `sm-match` | [`matching`] |
//! | Self-tuning cost-model planner | `sm-planner` | [`planner`] |
//! | Glasgow CP solver | `sm-glasgow` | [`glasgow`] |
//! | Dataset stand-ins | `sm-datasets` | [`datasets`] |
//! | Concurrent query service | `sm-service` | [`service`] |
//! | Dynamic graphs & incremental matching | `sm-delta` | [`delta`] |
//! | Durability: WAL, snapshots, recovery | `sm-durable` | [`durable`] |
//!
//! # Quickstart
//!
//! ```
//! use subgraph_matching::prelude::*;
//!
//! // A labeled triangle query against a small data graph.
//! let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
//! let g = graph_from_edges(
//!     &[0, 1, 2, 1, 2],
//!     &[(0, 1), (1, 2), (0, 2), (0, 3), (3, 4), (0, 4), (1, 4)],
//! );
//! let ctx = DataContext::new(&g);
//! let out = Algorithm::DpIso.optimized().run(&q, &ctx, &MatchConfig::default());
//! // three labeled triangles: {v0,v1,v2}, {v0,v3,v4}, {v0,v1,v4}
//! assert_eq!(out.matches, 3);
//! ```

#![warn(missing_docs)]

pub use sm_datasets as datasets;
pub use sm_delta as delta;
pub use sm_durable as durable;
pub use sm_glasgow as glasgow;
pub use sm_graph as graph;
pub use sm_intersect as intersect;
pub use sm_match as matching;
pub use sm_planner as planner;
pub use sm_service as service;

/// The most commonly used items in one import.
pub mod prelude {
    pub use sm_graph::builder::graph_from_edges;
    pub use sm_graph::{Graph, GraphBuilder, GraphStats, Label, VertexId};
    pub use sm_match::enumerate::{CollectSink, CountSink, MatchSink};
    pub use sm_match::{
        recommended, Algorithm, DataContext, FilterKind, LcMethod, MatchConfig, MatchOutput,
        OrderKind, Outcome, Pipeline, QueryContext,
    };
    pub use sm_service::{QueryRequest, Service, ServiceConfig, ServiceOutcome};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_compiles_and_runs() {
        let q = graph_from_edges(&[0, 0], &[(0, 1)]);
        let g = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let ctx = DataContext::new(&g);
        let out = Algorithm::GraphQl
            .optimized()
            .run(&q, &ctx, &MatchConfig::default());
        assert_eq!(out.matches, 4); // 2 edges x 2 directions
    }
}
